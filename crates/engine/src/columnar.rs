//! The columnar (vectorized) batch execution path.
//!
//! [`Pipeline::push_batch_with`] processes a row-major
//! [`TupleBatch`](jisc_common::TupleBatch) through per-element deltas that
//! carry an `Arc`'d tuple each — every probe pays a pointer chase and a
//! refcount round-trip even when it matches nothing, which is what capped
//! the row path's batching gains. [`Pipeline::push_columnar_with`] executes
//! the same two-phase flush over structure-of-arrays deltas instead:
//!
//! * the **key hashes of the whole batch** are produced by one column
//!   kernel ([`jisc_common::kernels::hash_column`]) and ride along as a
//!   dense column, feeding the slab store's `insert_hashed`/
//!   `for_each_match_hashed` entry points directly;
//! * **probe loops read only the dense key/hash columns** — a delta tuple's
//!   `Arc` is touched (cloned) only when a probe actually matches, so a
//!   selective join's flush no longer scales with refcount traffic;
//! * **window expiry is planned per batch, not per arrival**: when no
//!   window pops interleave with the batch at all it commits as one bulk
//!   segment; otherwise a read-only planner cuts the batch into maximal
//!   *bulk-safe segments* — each segment's expiries provably commute with
//!   its inserts (no expiring key collides with a segment insert, no
//!   segment row expires mid-segment) and execute as one bulk
//!   pops-then-inserts step. Only incomplete (mid-migration) state forces
//!   the exact per-arrival row path;
//! * **nested-loop (KeyEq) probes and intra-batch pairing** evaluate the
//!   join predicate over an entire delta column into a [`SelBitmap`]
//!   (64 rows per word, branch-free) instead of scanning the state once
//!   per delta element and materializing intermediates.
//!
//! The output is equivalent to pushing the batch's rows one at a time in
//! order, by lineage multiset — property-tested against the per-tuple and
//! row-batch paths for all four migration strategies.
//!
//! Per-kernel wall-clock/element counters accumulate in
//! [`Pipeline::kernels`] ([`KernelStats`]) and surface as a footer line in
//! [`crate::explain::explain`]. They are deliberately *not* part of
//! [`jisc_common::Metrics`], which must stay deterministic and comparable
//! across equivalent runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use jisc_common::kernels::{eq_bitmap, hash_column};
use jisc_common::{
    BaseTuple, ColumnarBatch, FxHashMap, FxHashSet, JiscError, Key, Result, SelBitmap, SeqNo, Tuple,
};

use crate::ops::DefaultSemantics;
use crate::pipeline::{
    Pipeline, Semantics, DELTA_SCRATCH_CAP, INTRA_PAIR_KEYED_MIN, PREFETCH_DIST, PREFETCH_MIN_STATE,
};
use crate::plan::{OpKind, Payload, QueueItem};
use crate::predicate::Predicate;
use crate::spec::WindowSpec;

/// Accumulated cost of one kernel: how often it ran, how many column
/// elements it touched, and the wall-clock nanoseconds it took.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelCounter {
    /// Times the kernel ran.
    pub invocations: u64,
    /// Column elements processed across all invocations.
    pub elements: u64,
    /// Total wall-clock nanoseconds.
    pub nanos: u64,
}

impl KernelCounter {
    fn record(&mut self, elements: u64, took: Duration) {
        self.invocations += 1;
        self.elements += elements;
        self.nanos += took.as_nanos() as u64;
    }

    /// Mean nanoseconds per element (0.0 before any elements).
    pub fn ns_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.nanos as f64 / self.elements as f64
        }
    }
}

/// Per-kernel cost counters of the columnar path, surfaced in
/// [`explain`](crate::explain::explain)'s footer. Wall-clock based, so kept
/// out of [`jisc_common::Metrics`] (which is deterministic and comparable).
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Whole-column key hashing.
    pub hash: KernelCounter,
    /// Phase-I probes of pre-batch states (elements = delta entries probed).
    pub probe: KernelCounter,
    /// Intra-batch delta×delta pairing (elements = left-side entries).
    pub pair: KernelCounter,
    /// Phase-II state installs + root emission (elements = entries installed).
    pub install: KernelCounter,
    /// Bulk window expiry (elements = tuples expired).
    pub expire: KernelCounter,
}

impl KernelStats {
    /// Has the columnar path run at all?
    pub fn any(&self) -> bool {
        self.hash.invocations > 0
    }

    /// Visits every kernel counter as a `(stable name, counter)` pair —
    /// the bridge into the telemetry registry (and the single list the
    /// footer renders from).
    pub fn for_each_named(&self, mut f: impl FnMut(&'static str, &KernelCounter)) {
        f("hash", &self.hash);
        f("probe", &self.probe);
        f("pair", &self.pair);
        f("install", &self.install);
        f("expire", &self.expire);
    }

    /// The `explain` footer line, rendered by the shared telemetry
    /// renderer (same `section: k=v` shape as the `index:` footer).
    pub fn footer(&self) -> String {
        let mut entries: Vec<(&'static str, String)> = Vec::with_capacity(5);
        self.for_each_named(|name, c| {
            entries.push((name, format!("{}@{:.1}ns", c.elements, c.ns_per_element())));
        });
        jisc_telemetry::render::line("kernels", &entries)
    }
}

/// One node's batch delta in structure-of-arrays layout: parallel dense
/// columns, one entry per delta tuple. The probe loops read `keys`/`hashes`
/// only; `tuples` is touched when a probe matches (the `Arc` clone the row
/// path paid per element now happens per *result*).
#[derive(Debug, Default)]
pub(crate) struct ColDelta {
    keys: Vec<Key>,
    hashes: Vec<u64>,
    fresh: Vec<bool>,
    /// Newest constituent sequence number (intra-batch pairing resolves
    /// which side "arrived later" from this column without touching the
    /// tuples).
    max_seqs: Vec<SeqNo>,
    tuples: Vec<Tuple>,
}

impl ColDelta {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn push(&mut self, key: Key, hash: u64, fresh: bool, max_seq: SeqNo, tuple: Tuple) {
        self.keys.push(key);
        self.hashes.push(hash);
        self.fresh.push(fresh);
        self.max_seqs.push(max_seq);
        self.tuples.push(tuple);
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.hashes.clear();
        self.fresh.clear();
        self.max_seqs.clear();
        self.tuples.clear();
    }

    fn shrink(&mut self, cap: usize) {
        if self.keys.capacity() > cap {
            self.keys.shrink_to(cap);
            self.hashes.shrink_to(cap);
            self.fresh.shrink_to(cap);
            self.max_seqs.shrink_to(cap);
            self.tuples.shrink_to(cap);
        }
    }
}

/// One expired base tuple's removal as carried by the bulk retraction
/// kernel (the `fresh` flag of a queued `Remove` is omitted — the default
/// removal walk threads it through unread).
#[derive(Debug, Clone, Copy)]
struct RemoveItem {
    stream: jisc_common::StreamId,
    seq: SeqNo,
    key: Key,
}

/// Reusable scratch of the columnar path, owned by the pipeline so the
/// steady state allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct ColScratch {
    /// Whole-batch key hashes (hash kernel output).
    hashes: Vec<u64>,
    /// Effective per-row timestamps after clock resolution.
    eff_ts: Vec<u64>,
    /// Per-node SoA deltas, indexed by `NodeId`.
    deltas: Vec<ColDelta>,
    /// Distinct keys of the current segment (expiry-commutation check).
    batch_keys: FxHashSet<Key>,
    /// Predicate-kernel output bitmap.
    bitmap: SelBitmap,
    /// Per-stream: ring entries to expire for the current segment.
    pops: Vec<usize>,
    /// Per-stream arrival counts (current segment, or whole batch during
    /// the global planning pass).
    arrivals: Vec<usize>,
    /// One row's prospective pops: `(stream, ring position, key)`.
    row_pops: Vec<(usize, usize, Key)>,
    /// Pops of the current segment whose removal is deferred past the
    /// segment's flush: `(stream, ring position)`.
    deferred_pops: Vec<(usize, usize)>,
    /// Keys with a deferred removal pending — a new arrival on such a key
    /// cuts the segment (it must not pair with the removed tuple).
    deferred_keys: FxHashSet<Key>,
    /// Tuples popped from their rings whose `Remove` has not been
    /// enqueued yet; drained into the next expiry run.
    pending_removes: Vec<Arc<BaseTuple>>,
    /// Per-node pending removal columns of the bulk retraction kernel,
    /// indexed by `NodeId`.
    retract: Vec<Vec<RemoveItem>>,
}

/// Result of the read-only clock/expiry planning pass.
enum BatchPlan {
    /// No window expiry interleaves with the batch: one bulk segment.
    Bulk,
    /// Expiry interleaves; execute as maximal bulk-safe segments, cutting
    /// where an expiring key collides with a segment insert.
    Segmented,
    /// Clock violation, unknown stream, or mid-migration incomplete state:
    /// run the exact per-arrival row path.
    Fallback,
}

impl Pipeline {
    /// Process a whole [`ColumnarBatch`] to quiescence under the given
    /// semantics, equivalent (by output lineage multiset) to pushing its
    /// rows one at a time in order — the columnar counterpart of
    /// [`Pipeline::push_batch_with`], executed through the vectorized
    /// kernel path described in [`crate::columnar`].
    pub fn push_columnar_with(
        &mut self,
        sem: &mut impl Semantics,
        batch: &ColumnarBatch,
    ) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if batch.len() < 2 || !self.plan.batchable() {
            for i in 0..batch.len() {
                let t = batch.row(i);
                if let Some(seq) = t.seq {
                    self.set_next_seq(seq);
                }
                let ts = match t.ts {
                    Some(ts) => ts,
                    None => self.last_ts.max(self.next_seq),
                };
                self.push_at_with(sem, t.stream, t.key, t.payload, ts)?;
            }
            return Ok(());
        }
        if self.pending_items > 0 {
            return Err(JiscError::InvalidConfig(
                "previous arrival not yet processed: run the pipeline before \
                 ingesting the next batch"
                    .into(),
            ));
        }

        let mut col = std::mem::take(&mut self.col);
        let t0 = Instant::now();
        hash_column(batch.keys(), &mut col.hashes);
        self.kernels.hash.record(batch.len() as u64, t0.elapsed());

        let plan = self.plan_batch(batch, &mut col);
        let result = match plan {
            BatchPlan::Bulk => {
                col.pops.clear();
                col.pops.resize(self.catalog.len(), 0);
                col.deferred_pops.clear();
                self.commit_segment(sem, batch, &mut col, 0, batch.len());
                self.flush_columnar(sem, &mut col);
                Ok(())
            }
            BatchPlan::Segmented => {
                let mut start = 0;
                while start < batch.len() {
                    let end = self.plan_segment(batch, start, &mut col);
                    self.commit_segment(sem, batch, &mut col, start, end);
                    self.flush_columnar(sem, &mut col);
                    start = end;
                }
                self.drain_deferred(sem, &mut col);
                Ok(())
            }
            BatchPlan::Fallback => {
                // Row-by-row deferred ingest: exact per-arrival window and
                // clock semantics, including the serial-prefix state on
                // error. Hot batches never land here; conflicting or
                // malformed ones do.
                let mut out = Ok(());
                for i in 0..batch.len() {
                    if let Err(e) = self.ingest_deferred(sem, &batch.row(i)) {
                        out = Err(e);
                        break;
                    }
                }
                self.flush_run(sem);
                out
            }
        };
        self.col = col;
        result
    }

    /// [`Pipeline::push_columnar_with`] under the default semantics.
    pub fn push_columnar(&mut self, batch: &ColumnarBatch) -> Result<()> {
        self.push_columnar_with(&mut DefaultSemantics, batch)
    }

    /// Read-only planning pass: resolve every row's effective timestamp
    /// and classify the batch — bulk (no expiry interleaves), segmented
    /// (expiry interleaves but state is complete), or row-path fallback.
    /// Mutates only `col` scratch.
    fn plan_batch(&self, batch: &ColumnarBatch, col: &mut ColScratch) -> BatchPlan {
        let n = batch.len();

        // Clock resolution: simulate the sequence/timestamp assignment the
        // serial path would perform. Any monotonicity violation or a
        // pinned sequence that would rewind the transition clock falls
        // back — the row path reproduces the exact serial-prefix
        // semantics (including the error).
        col.eff_ts.clear();
        col.eff_ts.reserve(n);
        let mut sim_seq = self.next_seq;
        let mut sim_ts = self.last_ts;
        for i in 0..n {
            if let Some(s) = batch.seq_at(i) {
                if s < self.last_transition_seq {
                    return BatchPlan::Fallback;
                }
                sim_seq = s;
            }
            let ts = batch.ts_at(i).unwrap_or_else(|| sim_ts.max(sim_seq));
            if ts < sim_ts {
                return BatchPlan::Fallback;
            }
            sim_ts = ts;
            col.eff_ts.push(ts);
            sim_seq += 1;
        }

        // Per-stream arrival counts, validating streams on the way.
        let streams = self.catalog.len();
        col.arrivals.clear();
        col.arrivals.resize(streams, 0);
        for &s in batch.streams() {
            let si = s.0 as usize;
            if si >= streams || self.plan.scan_of(s).is_none() {
                return BatchPlan::Fallback;
            }
            col.arrivals[si] += 1;
        }

        // Does any window expiry interleave with this batch at all? A
        // count window pops once its population would exceed `w`; a time
        // window pops when a ring front ages past `d` by the batch's final
        // timestamp, or when the batch's own span reaches `d` (a batch row
        // would expire mid-batch).
        let (first_ts, final_ts) = (col.eff_ts[0], col.eff_ts[n - 1]);
        let mut expiry = false;
        for i in 0..streams {
            let s = jisc_common::StreamId(i as u16);
            expiry |= match self.catalog.window_spec(s) {
                WindowSpec::Count(w) => self.rings[i].len() + col.arrivals[i] > w,
                WindowSpec::Time(d) => {
                    final_ts - first_ts >= d
                        || self.rings[i]
                            .front()
                            .is_some_and(|(at, _)| final_ts.saturating_sub(*at) >= d)
                }
            };
            if expiry {
                break;
            }
        }
        if !expiry {
            return BatchPlan::Bulk;
        }
        if self.any_state_incomplete() {
            // Completion bookkeeping does not commute with bulk removals;
            // mid-migration batches that expire take the exact row path.
            return BatchPlan::Fallback;
        }
        BatchPlan::Segmented
    }

    /// Greedy maximal bulk-safe segment starting at row `start`.
    ///
    /// All joins are key-equality (`batchable()` gates the columnar path),
    /// so only *per-key* event order matters for the output lineage
    /// multiset — events on different keys commute freely. A ring pop
    /// triggered mid-segment is therefore handled one of three ways:
    ///
    /// * its key was **not inserted earlier in the segment** → execute it
    ///   *before* the segment's inserts (the bulk pre-pop), preserving
    ///   pop-before-insert for that key (this covers a pop of the
    ///   triggering row's own key: serial order is slide-then-insert);
    /// * its key **was inserted earlier** → *defer* the removal until
    ///   after the segment's flush. Serially every segment insert of that
    ///   key precedes the pop (a later same-key arrival cuts the
    ///   segment), so post-flush removal preserves per-key order;
    /// * it would pop a **segment row** (count-window overflow, or the
    ///   segment's timestamp span reaching the shortest time window) →
    ///   cut: a batch tuple expiring mid-batch cannot be bulk-ordered.
    ///
    /// A new arrival whose key has a deferred removal pending also cuts —
    /// it must probe the post-removal state. Fills `col.pops` (per-stream
    /// ring pops) and `col.deferred_pops`/`col.deferred_keys` for the
    /// segment, and always returns `end > start`: a single row is
    /// trivially safe, since its own pops precede its insert in both
    /// serial and bulk order.
    fn plan_segment(&self, batch: &ColumnarBatch, start: usize, col: &mut ColScratch) -> usize {
        let n = batch.len();
        let streams = self.catalog.len();
        col.pops.clear();
        col.pops.resize(streams, 0);
        col.arrivals.clear();
        col.arrivals.resize(streams, 0);
        col.batch_keys.clear();
        col.deferred_pops.clear();
        col.deferred_keys.clear();
        let min_ticks = (0..streams)
            .filter_map(
                |i| match self.catalog.window_spec(jisc_common::StreamId(i as u16)) {
                    WindowSpec::Time(d) => Some(d),
                    WindowSpec::Count(_) => None,
                },
            )
            .min();
        let (keys, streams_col) = (batch.keys(), batch.streams());
        let start_ts = col.eff_ts[start];
        let mut e = start;
        while e < n {
            let ts = col.eff_ts[e];
            let (s, key) = (streams_col[e], keys[e]);
            let si = s.0 as usize;
            if let Some(d) = min_ticks {
                if e > start && ts - start_ts >= d {
                    break; // admitting this row would age a segment row past `d`
                }
            }
            if col.deferred_keys.contains(&key) {
                break; // must probe state after the deferred removal lands
            }
            // Collect this row's prospective pops read-only, so a cut
            // leaves `col.pops`/deferral state describing `[start, e)`.
            col.row_pops.clear();
            if self.has_time_windows {
                for i in 0..streams {
                    if let WindowSpec::Time(d) =
                        self.catalog.window_spec(jisc_common::StreamId(i as u16))
                    {
                        let ring = &self.rings[i];
                        let mut c = col.pops[i];
                        while let Some((at, old)) = ring.get(c) {
                            if ts.saturating_sub(*at) < d {
                                break;
                            }
                            col.row_pops.push((i, c, old.key));
                            c += 1;
                        }
                    }
                }
            }
            let mut cut = false;
            if let WindowSpec::Count(w) = self.catalog.window_spec(s) {
                let ring = &self.rings[si];
                let live = ring.len() + col.arrivals[si] - col.pops[si];
                if live >= w {
                    match ring.get(col.pops[si]) {
                        Some((_, old)) => col.row_pops.push((si, col.pops[si], old.key)),
                        None => cut = true, // a segment row would pop mid-segment
                    }
                }
            }
            // A pop of this row's own key can neither be deferred past the
            // row's insert nor pre-popped before the earlier same-key
            // insert that makes it deferrable.
            cut |= col
                .row_pops
                .iter()
                .any(|(_, _, k)| *k == key && col.batch_keys.contains(k));
            if cut {
                break;
            }
            for &(i, c, k) in &col.row_pops {
                if col.batch_keys.contains(&k) {
                    col.deferred_pops.push((i, c));
                    col.deferred_keys.insert(k);
                }
                col.pops[i] = c + 1;
            }
            col.batch_keys.insert(key);
            col.arrivals[si] += 1;
            e += 1;
        }
        debug_assert!(e > start, "a single row is always bulk-safe");
        e.max(start + 1)
    }

    /// Execute a planned segment `[start, end)`: the previous segment's
    /// deferred removals and this segment's pre-pops run to quiescence
    /// first (keys disjoint from the segment's inserts, so they commute
    /// with its deferred inserts), deferred pops are staged for the *next*
    /// expiry run, then every row is appended to its window ring and
    /// scan-node delta.
    fn commit_segment(
        &mut self,
        sem: &mut impl Semantics,
        batch: &ColumnarBatch,
        col: &mut ColScratch,
        start: usize,
        end: usize,
    ) {
        // Bulk expiry for the whole segment: first the removals deferred
        // past the previous segment's flush, then this segment's pre-pops
        // (trigger order — deferred removals' triggers precede this
        // segment's rows).
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        expired.append(&mut col.pending_removes);
        for i in 0..col.pops.len() {
            for p in 0..col.pops[i] {
                let old = self.rings[i].pop_front().expect("planned pop").1;
                if col.deferred_pops.iter().any(|&(s, q)| s == i && q == p) {
                    col.pending_removes.push(old);
                } else {
                    expired.push(old);
                }
            }
        }
        self.expired_scratch = expired;
        self.run_removes(sem, col);

        // Sequential commit of the arrivals: clocks, freshness, window
        // rings, and the per-scan SoA deltas (hashes from the kernel
        // column — nothing rehashes).
        col.deltas.iter_mut().for_each(ColDelta::clear);
        if col.deltas.len() < self.plan.len() {
            col.deltas.resize_with(self.plan.len(), ColDelta::default);
        }
        let (keys, streams, payloads) = (batch.keys(), batch.streams(), batch.payloads());
        for i in start..end {
            if let Some(s) = batch.seq_at(i) {
                self.set_next_seq(s);
            }
            let ts = col.eff_ts[i];
            self.last_ts = ts;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.metrics.tuples_in += 1;
            let (stream, key) = (streams[i], keys[i]);
            let scan = self.plan.scan_of(stream).expect("validated stream");
            let prev = self.fresh[stream.0 as usize].insert(key, seq);
            let fresh = prev.is_none_or(|s| s < self.last_transition_seq);
            let base = Arc::new(BaseTuple::new(stream, seq, key, payloads[i]));
            self.rings[stream.0 as usize].push_back((ts, Arc::clone(&base)));
            col.deltas[scan.0 as usize].push(key, col.hashes[i], fresh, seq, Tuple::Base(base));
        }
    }

    /// Run any removals still deferred after the final segment's flush
    /// (the batch is over, so nothing remains for them to wait on).
    fn drain_deferred(&mut self, sem: &mut impl Semantics, col: &mut ColScratch) {
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        expired.append(&mut col.pending_removes);
        self.expired_scratch = expired;
        self.run_removes(sem, col);
    }

    /// Run the collected column of expired tuples (`self.expired_scratch`)
    /// through removal propagation: the bulk retraction kernel when the
    /// semantics' `Remove` handling is exactly the default one (see
    /// [`Semantics::bulk_retract_ok`]), per-item enqueue and a run to
    /// quiescence otherwise.
    fn run_removes(&mut self, sem: &mut impl Semantics, col: &mut ColScratch) {
        if self.expired_scratch.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let expired_n = self.expired_scratch.len() as u64;
        let mut expired = std::mem::take(&mut self.expired_scratch);
        if sem.bulk_retract_ok(self) {
            col.retract.iter_mut().for_each(Vec::clear);
            if col.retract.len() < self.plan.len() {
                col.retract.resize_with(self.plan.len(), Vec::new);
            }
            for old in expired.drain(..) {
                let scan = self.plan.scan_of(old.stream).expect("validated stream");
                col.retract[scan.0 as usize].push(RemoveItem {
                    stream: old.stream,
                    seq: old.seq,
                    key: old.key,
                });
            }
            self.retract_columnar(col);
        } else {
            for old in expired.drain(..) {
                let old_scan = self.plan.scan_of(old.stream).expect("validated stream");
                let old_fresh = self.fresh[old.stream.0 as usize]
                    .get(&old.key)
                    .is_none_or(|&s| s < self.last_transition_seq);
                self.pending_items += 1;
                self.plan.node_mut(old_scan).queue.push_back(QueueItem {
                    from: None,
                    payload: Payload::Remove {
                        stream: old.stream,
                        seq: old.seq,
                        key: old.key,
                        fresh: old_fresh,
                    },
                });
            }
            self.run_with(sem);
        }
        self.expired_scratch = expired;
        self.kernels.expire.record(expired_n, t0.elapsed());
    }

    /// Node-major bulk retraction: drain `col.retract` in topo order,
    /// replaying the default `Remove` walk — scans always forward the
    /// clearing tuple, joins forward while entries were removed (or the
    /// key is still pending completion), the root counts retractions —
    /// without per-item queue dispatch. Exact only for semantics that
    /// opted in via [`Semantics::bulk_retract_ok`]; the `fresh` flag a
    /// queued `Remove` would carry is not materialized because the
    /// default walk only threads it through unread.
    fn retract_columnar(&mut self, col: &mut ColScratch) {
        for i in 0..self.plan.topo().len() {
            let id = self.plan.topo()[i];
            if col.retract[id.0 as usize].is_empty() {
                continue;
            }
            let mut items = std::mem::take(&mut col.retract[id.0 as usize]);
            let parent = self.plan.node(id).parent;
            let is_scan = matches!(self.plan.node(id).op, OpKind::Scan(_));
            for it in &items {
                let removed = self.state_remove_containing(id, it.stream, it.seq, it.key);
                if is_scan || removed > 0 || self.plan.node(id).state.needs_completion(it.key) {
                    match parent {
                        Some(par) => col.retract[par.0 as usize].push(*it),
                        None => self.output.retractions += 1,
                    }
                }
            }
            items.clear();
            col.retract[id.0 as usize] = items;
        }
    }

    /// The columnar two-phase flush: phase I computes every join node's
    /// delta against the pre-batch states bottom-up (dense-column probes,
    /// bitmap-driven pairing), phase II installs all deltas and emits at
    /// the root. Same phase discipline as the row path's `flush_run`, so
    /// JISC completion stays sound mid-batch.
    fn flush_columnar(&mut self, sem: &mut impl Semantics, col: &mut ColScratch) {
        let ColScratch { deltas, bitmap, .. } = col;

        // Phase I.
        for i in 0..self.plan.topo().len() {
            let id = self.plan.topo()[i];
            let node = self.plan.node(id);
            let nlj = match node.op {
                OpKind::HashJoin => false,
                OpKind::NljJoin(p) => {
                    debug_assert_eq!(p, Predicate::KeyEq, "batchable plans are KeyEq-only");
                    true
                }
                _ => continue,
            };
            let (l, r) = (
                node.left.expect("binary node has left child"),
                node.right.expect("binary node has right child"),
            );
            let (li, ri) = (l.0 as usize, r.0 as usize);
            let idx = id.0 as usize;
            debug_assert!(li < idx && ri < idx, "children precede parent in arena");
            let (lower, upper) = deltas.split_at_mut(idx);
            let out = &mut upper[0];
            // Left delta × pre-batch right state, then left state × right
            // delta.
            let probed = (lower[li].len() + lower[ri].len()) as u64;
            if probed > 0 {
                let t_probe = Instant::now();
                self.probe_direction(sem, r, &lower[li], out, nlj, false, bitmap);
                self.probe_direction(sem, l, &lower[ri], out, nlj, true, bitmap);
                self.kernels.probe.record(probed, t_probe.elapsed());
            }
            // Intra-batch pairing term.
            if !lower[li].is_empty() && !lower[ri].is_empty() {
                let t_pair = Instant::now();
                Self::pair_deltas(&lower[li], &lower[ri], out, bitmap);
                self.kernels
                    .pair
                    .record(lower[li].len() as u64, t_pair.elapsed());
            }
        }

        // Phase II: install every delta into its own node's state; the
        // root's delta is the batch's query output. Tuples move out of the
        // delta (no per-entry refcount bump except the root's emit+install
        // pair).
        let t_install = Instant::now();
        let mut installed = 0u64;
        for i in 0..self.plan.topo().len() {
            let id = self.plan.topo()[i];
            let idx = id.0 as usize;
            if deltas[idx].is_empty() {
                continue;
            }
            let is_root = self.plan.node(id).parent.is_none();
            let mut d = std::mem::take(&mut deltas[idx]);
            installed += d.len() as u64;
            for (j, t) in d.tuples.drain(..).enumerate() {
                let h = d.hashes[j];
                if is_root {
                    self.state_insert_hashed(id, h, t.clone());
                    self.emit(t);
                } else {
                    self.state_insert_hashed(id, h, t);
                }
            }
            d.clear();
            deltas[idx] = d;
        }
        self.kernels.install.record(installed, t_install.elapsed());
        for d in deltas.iter_mut() {
            d.shrink(DELTA_SCRATCH_CAP);
        }
    }

    /// Probe `state_node`'s pre-batch state with every entry of `src`,
    /// appending join results to `out`.
    ///
    /// Complete states take the vectorized path: hash states are probed
    /// element-major straight off the hash column (prefetched, no `Arc`
    /// touched until a match); list/theta states are probed stored-major —
    /// one [`eq_bitmap`] evaluation of the whole delta key column per
    /// stored entry, replacing a full state scan per delta element.
    /// Incomplete states (mid-migration) take the row path's element-major
    /// loop with a [`Semantics::before_probe`] call per element, so
    /// on-demand completion observes exactly the per-tuple order.
    #[allow(clippy::too_many_arguments)]
    fn probe_direction(
        &mut self,
        sem: &mut impl Semantics,
        state_node: crate::plan::NodeId,
        src: &ColDelta,
        out: &mut ColDelta,
        nlj: bool,
        stored_is_left: bool,
        bm: &mut SelBitmap,
    ) {
        if src.is_empty() {
            return;
        }
        // Batch-aware just-in-time fault-back (tiered states): fault every
        // cold chain this direction's delta column will probe with one
        // sequential read per touched segment, so both the vectorized and
        // the row-exact probe loops below run against a hot-only store.
        if self.plan.node(state_node).state.cold_entries() > 0 {
            if nlj {
                self.plan
                    .node_mut(state_node)
                    .state
                    .fault_in_all(&mut self.metrics);
            } else {
                self.plan
                    .node_mut(state_node)
                    .state
                    .fault_in_keys(src.keys.iter().copied(), &mut self.metrics);
            }
        }
        let join = |key: Key, t: &Tuple, m: &Tuple| {
            if stored_is_left {
                Tuple::joined(key, m.clone(), t.clone())
            } else {
                Tuple::joined(key, t.clone(), m.clone())
            }
        };
        if !self.plan.node(state_node).state.is_complete() {
            // Slow path: completion may mutate the probed state between
            // elements; mirror the row path exactly.
            let mut buf = self.take_probe_scratch();
            for di in 0..src.len() {
                let (key, h) = (src.keys[di], src.hashes[di]);
                sem.before_probe(self, state_node, key);
                buf.clear();
                if nlj {
                    self.scan_theta_state_into(
                        state_node,
                        Predicate::KeyEq,
                        key,
                        stored_is_left,
                        &mut buf,
                    );
                } else {
                    self.lookup_state_into_hashed(state_node, h, key, &mut buf);
                }
                for m in buf.drain(..) {
                    out.push(
                        key,
                        h,
                        src.fresh[di],
                        src.max_seqs[di].max(m.max_seq()),
                        join(key, &src.tuples[di], &m),
                    );
                }
            }
            self.recycle_probe_scratch(buf);
            return;
        }
        // Fast path: the state cannot change during this direction (no
        // completion, installs deferred to phase II), so borrow it once.
        let plan = &self.plan;
        let metrics = &mut self.metrics;
        let st = &plan.node(state_node).state;
        if nlj {
            // Stored-major bitmap probe. Accounting matches the
            // element-major theta scan: one probe per delta element, every
            // (stored, delta) pair compared once.
            metrics.probes += src.len() as u64;
            metrics.nlj_comparisons += (src.len() * st.len()) as u64;
            for m in st.iter() {
                eq_bitmap(&src.keys, m.key(), bm);
                bm.for_each_set(|di| {
                    out.push(
                        src.keys[di],
                        src.hashes[di],
                        src.fresh[di],
                        src.max_seqs[di].max(m.max_seq()),
                        join(src.keys[di], &src.tuples[di], m),
                    );
                });
            }
            return;
        }
        let prefetch = st.len() >= PREFETCH_MIN_STATE;
        for di in 0..src.len() {
            if prefetch {
                if let Some(&hn) = src.hashes.get(di + PREFETCH_DIST) {
                    st.prefetch(hn);
                }
            }
            let (key, h) = (src.keys[di], src.hashes[di]);
            let (f, ms) = (src.fresh[di], src.max_seqs[di]);
            let t = &src.tuples[di];
            st.for_each_match_hashed(h, key, metrics, |m| {
                out.push(key, h, f, ms.max(m.max_seq()), join(key, t, m));
            });
        }
    }

    /// Intra-batch pairing: left delta × right delta on key equality,
    /// emitting each pair with the fresh flag of its later-arriving side.
    /// Small products run the bitmap kernel (one whole-column predicate
    /// evaluation per left entry, 64 comparisons per word); large products
    /// build a one-shot keyed index over the right delta, same as the row
    /// path.
    fn pair_deltas(la: &ColDelta, ra: &ColDelta, out: &mut ColDelta, bm: &mut SelBitmap) {
        if la.is_empty() || ra.is_empty() {
            return;
        }
        let emit = |a: usize, b: usize, out: &mut ColDelta| {
            let f = if la.max_seqs[a] > ra.max_seqs[b] {
                la.fresh[a]
            } else {
                ra.fresh[b]
            };
            out.push(
                la.keys[a],
                la.hashes[a],
                f,
                la.max_seqs[a].max(ra.max_seqs[b]),
                Tuple::joined(la.keys[a], la.tuples[a].clone(), ra.tuples[b].clone()),
            );
        };
        if la.len() * ra.len() > INTRA_PAIR_KEYED_MIN {
            let mut by_key: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
            for (j, &k) in ra.keys.iter().enumerate() {
                by_key.entry(k).or_default().push(j as u32);
            }
            for a in 0..la.len() {
                if let Some(js) = by_key.get(&la.keys[a]) {
                    for &j in js {
                        emit(a, j as usize, out);
                    }
                }
            }
        } else {
            for a in 0..la.len() {
                eq_bitmap(&ra.keys, la.keys[a], bm);
                bm.for_each_set(|b| emit(a, b, out));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Catalog, JoinStyle, PlanSpec, StreamDef};
    use jisc_common::{SplitMix64, StreamId, TupleBatch};

    fn pipes(catalog: Catalog, spec: &PlanSpec) -> (Pipeline, Pipeline) {
        (
            Pipeline::new(catalog.clone(), spec).unwrap(),
            Pipeline::new(catalog, spec).unwrap(),
        )
    }

    /// Drive one pipeline with row batches and the other with the same
    /// arrivals as columnar batches; outputs must agree as lineage
    /// multisets.
    fn assert_equivalent(
        catalog: Catalog,
        spec: &PlanSpec,
        arrivals: &[(StreamId, Key, Option<u64>)],
        batch: usize,
    ) {
        let (mut row, mut colp) = pipes(catalog, spec);
        for chunk in arrivals.chunks(batch) {
            let mut rb = TupleBatch::new(chunk.len());
            let mut cb = ColumnarBatch::new(chunk.len());
            for &(s, k, ts) in chunk {
                rb.push(jisc_common::BatchedTuple {
                    stream: s,
                    key: k,
                    payload: 0,
                    ts,
                    seq: None,
                })
                .unwrap();
                cb.push_stamped(s, k, 0, ts, None).unwrap();
            }
            row.push_batch(&rb).unwrap();
            colp.push_columnar(&cb).unwrap();
        }
        assert_eq!(
            row.output.lineage_multiset(),
            colp.output.lineage_multiset(),
            "columnar output diverged from row-batch output"
        );
        assert_eq!(row.output.count(), colp.output.count());
    }

    fn random_arrivals(
        streams: u16,
        n: usize,
        key_space: u64,
        seed: u64,
    ) -> Vec<(StreamId, Key, Option<u64>)> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                (
                    StreamId((rng.next_u64() % streams as u64) as u16),
                    rng.next_u64() % key_space,
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn columnar_matches_row_batches_hash_join_with_expiry() {
        // Window of 16 on a 3-way join: every batch of 64 expires plenty,
        // exercising both the bulk-expiry plan and the fallback.
        let catalog = Catalog::uniform(&["R", "S", "T"], 16).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S", "T"], JoinStyle::Hash);
        let arrivals = random_arrivals(3, 600, 8, 42);
        for batch in [1, 3, 64, 256] {
            assert_equivalent(catalog.clone(), &spec, &arrivals, batch);
        }
    }

    #[test]
    fn columnar_matches_row_batches_nlj_keyeq() {
        let catalog = Catalog::uniform(&["R", "S", "T"], 32).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S", "T"], JoinStyle::Nlj(Predicate::KeyEq));
        let arrivals = random_arrivals(3, 400, 6, 7);
        for batch in [2, 64] {
            assert_equivalent(catalog.clone(), &spec, &arrivals, batch);
        }
    }

    #[test]
    fn columnar_matches_row_batches_time_windows() {
        let defs = vec![StreamDef::timed("R", 50), StreamDef::timed("S", 80)];
        let catalog = Catalog::new(defs).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash);
        let mut rng = SplitMix64::new(9);
        let mut ts = 0u64;
        let arrivals: Vec<_> = (0..500)
            .map(|_| {
                ts += rng.next_u64() % 7;
                (
                    StreamId((rng.next_u64() % 2) as u16),
                    rng.next_u64() % 5,
                    Some(ts),
                )
            })
            .collect();
        // Batch of 64 spans ~192 ticks on average — wider than both
        // windows, so most batches take the row fallback; batch 8 mostly
        // stays bulk. Both must agree with pure row execution.
        for batch in [8, 64] {
            assert_equivalent(catalog.clone(), &spec, &arrivals, batch);
        }
    }

    #[test]
    fn columnar_falls_back_on_non_batchable_plans() {
        let catalog = Catalog::uniform(&["A", "B"], 10).unwrap();
        let spec = PlanSpec::set_diff_chain(&["A", "B"]);
        let (mut row, mut colp) = pipes(catalog, &spec);
        let arrivals = random_arrivals(2, 100, 4, 3);
        let mut cb = ColumnarBatch::new(arrivals.len());
        for &(s, k, _) in &arrivals {
            row.push(s, k, 0).unwrap();
            cb.push(s, k, 0).unwrap();
        }
        colp.push_columnar(&cb).unwrap();
        assert_eq!(
            row.output.lineage_multiset(),
            colp.output.lineage_multiset()
        );
    }

    #[test]
    fn columnar_rejects_non_monotonic_pinned_timestamps() {
        let catalog = Catalog::uniform(&["R", "S"], 10).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash);
        let mut p = Pipeline::new(catalog, &spec).unwrap();
        let mut cb = ColumnarBatch::new(4);
        cb.push_stamped(StreamId(0), 1, 0, Some(100), None).unwrap();
        cb.push_stamped(StreamId(1), 1, 0, Some(50), None).unwrap();
        assert!(p.push_columnar(&cb).is_err());
        // The serial prefix (first row) must have landed.
        assert_eq!(p.metrics.tuples_in, 1);
    }

    #[test]
    fn kernel_stats_accumulate() {
        let catalog = Catalog::uniform(&["R", "S"], 100).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash);
        let mut p = Pipeline::new(catalog, &spec).unwrap();
        let mut cb = ColumnarBatch::new(8);
        for i in 0..8u64 {
            cb.push(StreamId((i % 2) as u16), i % 3, 0).unwrap();
        }
        p.push_columnar(&cb).unwrap();
        assert!(p.kernels.any());
        assert_eq!(p.kernels.hash.elements, 8);
        assert_eq!(p.kernels.hash.invocations, 1);
        assert!(p.kernels.install.elements > 0, "deltas installed");
        let footer = p.kernels.footer();
        assert!(footer.starts_with("kernels: hash=8@"), "{footer}");
    }
}
