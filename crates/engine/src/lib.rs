//! Push-based pipelined stream-processing substrate for the JISC
//! reproduction (EDBT 2014).
//!
//! This crate is the execution engine the paper assumes (§2.1): queries
//! compile to binary trees of pipelined, push-based operators — stream
//! scans, symmetric hash joins, nested-loops (theta) joins, set-differences,
//! and root aggregates — each owning a materialized state and an input
//! queue. Sliding windows are count-based per stream; expirations propagate
//! bottom-up through the operator states.
//!
//! Migration strategies live in `jisc-core`; they plug into the engine
//! through the [`pipeline::Semantics`] trait and the state/plan accessors on
//! [`pipeline::Pipeline`].
//!
//! # Quick start
//!
//! ```
//! use jisc_engine::spec::{Catalog, JoinStyle, PlanSpec};
//! use jisc_engine::pipeline::Pipeline;
//! use jisc_common::StreamId;
//!
//! let catalog = Catalog::uniform(&["R", "S", "T"], 1000).unwrap();
//! let spec = PlanSpec::left_deep(&["R", "S", "T"], JoinStyle::Hash);
//! let mut pipe = Pipeline::new(catalog, &spec).unwrap();
//! pipe.push(StreamId(0), 42, 0).unwrap();
//! pipe.push(StreamId(1), 42, 0).unwrap();
//! pipe.push(StreamId(2), 42, 0).unwrap();
//! assert_eq!(pipe.output.count(), 1); // r ⋈ s ⋈ t
//! ```

pub mod baseline;
pub mod columnar;
pub mod explain;
pub mod lateness;
pub mod ops;
pub mod output;
pub mod pipeline;
pub mod plan;
pub mod predicate;
pub mod slab;
pub mod snapshot;
pub mod spec;
pub mod spill;
pub mod state;

pub use baseline::BaselineStore;
pub use columnar::{KernelCounter, KernelStats};
pub use explain::{explain, explain_plan};
pub use lateness::{LateStats, LatenessGate, LatenessPolicy};
pub use ops::DefaultSemantics;
pub use output::OutputSink;
pub use pipeline::{AdoptionOutcome, Pipeline, Semantics};
pub use plan::{Node, NodeId, OpClass, OpKind, Payload, Plan, QueueItem, Signature, StreamSet};
pub use predicate::Predicate;
pub use slab::{SlabStats, SlabStore};
pub use snapshot::{BaseRangeExport, BaseStateSnapshot};
pub use spec::{AggKind, Catalog, JoinStyle, PlanSpec, SpecNode, StreamDef, WindowSpec};
pub use spill::{ColdTier, DurableCheckpointStore, ScratchDir, SpillConfig, SpillStats};
pub use state::{PendingKeys, State, StoreKind};
