//! Operator states: the materialized output of each plan node.
//!
//! Following the paper's model (§2.1), every node of a query evaluation plan
//! owns a *state*: a scan node's state is the current window contents of its
//! stream; a join node's state is the materialized join of its children's
//! states; a set-difference node's state is the currently-visible outer
//! tuples. A binary operator probes the states of its children and inserts
//! results into its own state, which is in turn probed by its parent.
//!
//! States also carry the migration bookkeeping JISC needs (§4.3–§4.4):
//! a completeness flag (Definition 1), the pending-key set backing the
//! completion-detection counter, and — for bushy Case-3 states — the set of
//! keys already completed on demand.

use jisc_common::{
    hash_key, FxHashSet, JiscError, Key, KeyRange, Lineage, Metrics, Result, SeqNo, StreamId, Tuple,
};

use crate::predicate::Predicate;
use crate::slab::{SlabStats, SlabStore};
use crate::spill::{SpillConfig, SpillStats};

/// Physical layout of a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Hash-partitioned by join key; O(1) probes (symmetric hash join,
    /// stream scans, set-difference).
    Hash,
    /// Flat list; probes scan every entry (nested-loops / theta joins).
    List,
}

/// Entry storage.
///
/// The hash layout is the cache-conscious [`SlabStore`]: an open-addressing
/// index over a contiguous slab arena with intrusive per-key chains and an
/// insertion-order ring (see [`crate::slab`]). The previous
/// `FxHashMap<Key, Vec<Tuple>>` layout survives as
/// [`crate::baseline::BaselineStore`] for benchmarking and equivalence tests.
#[derive(Debug, Clone)]
enum Store {
    Hash(SlabStore),
    List(Vec<Tuple>),
}

/// Tracks which join-attribute values still need on-demand completion.
///
/// `Known` backs the integer counter of §4.3 (Cases 1 and 2): the counter's
/// value is the set's size, and the state is declared complete when it
/// reaches zero. `Unknown` is Case 3 (bushy plan, both children incomplete):
/// no counter can be initialized, so completed keys are tracked positively
/// and completion is detected through child notifications instead.
#[derive(Debug, Clone)]
pub enum PendingKeys {
    /// Keys awaiting completion; size of this set is the paper's counter.
    Known(FxHashSet<Key>),
    /// Case 3: pending set unknowable at transition time; remembers keys
    /// completed so far.
    Unknown { completed: FxHashSet<Key> },
}

/// A node's materialized state plus migration bookkeeping.
#[derive(Debug, Clone)]
pub struct State {
    store: Store,
    /// Definition 1: does this state hold *all* entries implied by the
    /// current windows? Always true outside migration.
    complete: bool,
    /// Present only while `!complete`.
    pending: Option<PendingKeys>,
    /// Total entries (cached so hash states report length in O(1)).
    len: usize,
    /// Per-key entry counts, maintained for `List` stores only (hash stores
    /// answer key questions from their buckets). Keeps the §4.3 counter
    /// seed [`State::distinct_key_count`] O(1) instead of a full scan plus
    /// a throwaway set allocation per call. Empty for `Hash` stores.
    list_keys: jisc_common::FxHashMap<Key, u32>,
}

/// Decrement a per-key count, dropping the entry at zero.
fn list_note_removed(counts: &mut jisc_common::FxHashMap<Key, u32>, key: Key) {
    if let Some(c) = counts.get_mut(&key) {
        *c -= 1;
        if *c == 0 {
            counts.remove(&key);
        }
    }
}

impl State {
    /// Fresh, empty, complete state of the given layout.
    pub fn new(kind: StoreKind) -> Self {
        let store = match kind {
            StoreKind::Hash => Store::Hash(SlabStore::new()),
            StoreKind::List => Store::List(Vec::new()),
        };
        State {
            store,
            complete: true,
            pending: None,
            len: 0,
            list_keys: Default::default(),
        }
    }

    /// Physical layout of this state.
    pub fn kind(&self) -> StoreKind {
        match self.store {
            Store::Hash(_) => StoreKind::Hash,
            Store::List(_) => StoreKind::List,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    // ----- completeness bookkeeping (Definition 1, §4.3) -----

    /// Is this state complete (Definition 1)?
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Mark complete and drop pending bookkeeping.
    pub fn mark_complete(&mut self) {
        self.complete = true;
        self.pending = None;
    }

    /// Mark incomplete with the given pending-key tracking.
    pub fn mark_incomplete(&mut self, pending: PendingKeys) {
        self.complete = false;
        self.pending = Some(pending);
    }

    /// The §4.3 counter value, if this state tracks one (Cases 1 and 2).
    pub fn counter(&self) -> Option<usize> {
        match &self.pending {
            Some(PendingKeys::Known(s)) => Some(s.len()),
            _ => None,
        }
    }

    /// Does `key` still need on-demand completion at this state?
    ///
    /// Complete states never do. Known-pending states need it iff the key is
    /// pending; Case-3 states need it unless already completed once.
    pub fn needs_completion(&self, key: Key) -> bool {
        if self.complete {
            return false;
        }
        match &self.pending {
            Some(PendingKeys::Known(s)) => s.contains(&key),
            Some(PendingKeys::Unknown { completed }) => !completed.contains(&key),
            // Incomplete but no pending info: be conservative.
            None => true,
        }
    }

    /// Record that `key` has been completed at this state; decrements the
    /// counter (Known) or grows the completed set (Unknown). Returns `true`
    /// if this state just became complete (counter hit zero).
    pub fn note_key_completed(&mut self, key: Key) -> bool {
        match &mut self.pending {
            Some(PendingKeys::Known(s)) => {
                s.remove(&key);
                if s.is_empty() {
                    self.mark_complete();
                    return true;
                }
                false
            }
            Some(PendingKeys::Unknown { completed }) => {
                completed.insert(key);
                false
            }
            None => false,
        }
    }

    /// Drop `key` from the pending set because it vanished from the child
    /// states (window expiry): there is nothing left to complete for it.
    /// Returns `true` if the state just became complete.
    pub fn note_key_expired(&mut self, key: Key) -> bool {
        if let Some(PendingKeys::Known(s)) = &mut self.pending {
            s.remove(&key);
            if s.is_empty() {
                self.mark_complete();
                return true;
            }
        }
        false
    }

    /// For Case-3 states whose children have both become complete: replace
    /// the unknown pending tracking with the residual key set that still
    /// needs completion. If it is empty the state becomes complete.
    /// Returns `true` if the state just became complete.
    pub fn resolve_case3(&mut self, residual: FxHashSet<Key>) -> bool {
        if self.complete {
            return true;
        }
        if residual.is_empty() {
            self.mark_complete();
            true
        } else {
            self.pending = Some(PendingKeys::Known(residual));
            false
        }
    }

    /// Keys completed so far on a Case-3 state (empty set otherwise).
    pub fn completed_keys(&self) -> Option<&FxHashSet<Key>> {
        match &self.pending {
            Some(PendingKeys::Unknown { completed }) => Some(completed),
            _ => None,
        }
    }

    /// Add freshly adopted keys to this state's completion debt (elastic
    /// range handover, target side): the moved keys' derived entries were
    /// not shipped, so each must be completed on demand before its first
    /// probe. A complete state becomes incomplete with a `Known` pending
    /// set; a `Known` state grows its set; a Case-3 state forgets any prior
    /// completion of the keys so they are re-completed. Returns `true` if
    /// the state just transitioned from complete to incomplete.
    pub fn add_pending_keys(&mut self, keys: impl IntoIterator<Item = Key>) -> bool {
        match &mut self.pending {
            Some(PendingKeys::Known(s)) => {
                s.extend(keys);
                false
            }
            Some(PendingKeys::Unknown { completed }) => {
                for k in keys {
                    completed.remove(&k);
                }
                false
            }
            None => {
                let set: FxHashSet<Key> = keys.into_iter().collect();
                if set.is_empty() {
                    return false;
                }
                let was_complete = self.complete;
                self.mark_incomplete(PendingKeys::Known(set));
                was_complete
            }
        }
    }

    /// Drop completion debt for keys hashing into `ranges` (elastic range
    /// handover, source side): the keys left this shard, so nothing here
    /// will ever probe them again. `Known` sets shrink — possibly to
    /// completion; Case-3 states only forget the keys' completed marks (the
    /// pending set is unknowable, so it cannot shrink). Returns `true` if
    /// the state just became complete.
    pub fn prune_pending_in_ranges(&mut self, ranges: &[KeyRange]) -> bool {
        let in_range = |k: &Key| {
            let h = hash_key(*k);
            ranges.iter().any(|r| r.contains(h))
        };
        match &mut self.pending {
            Some(PendingKeys::Known(s)) => {
                s.retain(|k| !in_range(k));
                if s.is_empty() {
                    self.mark_complete();
                    return true;
                }
                false
            }
            Some(PendingKeys::Unknown { completed }) => {
                completed.retain(|k| !in_range(k));
                false
            }
            None => false,
        }
    }

    // ----- entry operations -----

    /// Insert an entry under its own key.
    pub fn insert(&mut self, t: Tuple, m: &mut Metrics) {
        m.inserts += 1;
        self.len += 1;
        match &mut self.store {
            Store::Hash(slab) => slab.insert(t, m),
            Store::List(v) => {
                *self.list_keys.entry(t.key()).or_insert(0) += 1;
                v.push(t);
            }
        }
    }

    /// [`State::insert`] with the key's hash already computed (batched
    /// ingest pre-hashes whole batches once). List states ignore the hash.
    pub fn insert_hashed(&mut self, h: u64, t: Tuple, m: &mut Metrics) {
        match &mut self.store {
            Store::Hash(slab) => {
                m.inserts += 1;
                self.len += 1;
                slab.insert_hashed(h, t.key(), t, m);
            }
            Store::List(_) => self.insert(t, m),
        }
    }

    /// Entries matching `key` (hash states: the bucket; list states: a scan).
    ///
    /// Counts one probe (hash) or `len` comparisons (list). Allocates a
    /// fresh `Vec` per call — the probe hot path uses
    /// [`State::lookup_into`] / [`State::for_each_match`] instead.
    pub fn lookup(&self, key: Key, m: &mut Metrics) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.lookup_into(key, m, &mut out);
        out
    }

    /// Append entries matching `key` to `out` (same accounting as
    /// [`State::lookup`], no allocation beyond `out`'s growth).
    pub fn lookup_into(&self, key: Key, m: &mut Metrics, out: &mut Vec<Tuple>) {
        self.for_each_match(key, m, |t| out.push(t.clone()));
    }

    /// Visit each entry matching `key` without cloning or allocating.
    ///
    /// Counts one probe (hash) or `len` comparisons (list), exactly like
    /// [`State::lookup`].
    pub fn for_each_match(&self, key: Key, m: &mut Metrics, mut f: impl FnMut(&Tuple)) {
        m.probes += 1;
        match &self.store {
            Store::Hash(slab) => slab.for_each_match(key, m, f),
            Store::List(v) => {
                m.nlj_comparisons += v.len() as u64;
                for t in v.iter().filter(|t| t.key() == key) {
                    f(t);
                }
            }
        }
    }

    /// [`State::for_each_match`] with the key's hash already computed —
    /// the batch-probe kernel hashes a whole `TupleBatch` once and probes
    /// with [`State::prefetch`] warming the index ahead of each visit.
    /// Accounting is identical to [`State::for_each_match`].
    pub fn for_each_match_hashed(&self, h: u64, key: Key, m: &mut Metrics, f: impl FnMut(&Tuple)) {
        match &self.store {
            Store::Hash(slab) => {
                m.probes += 1;
                slab.for_each_match_hashed(h, key, m, f);
            }
            Store::List(_) => self.for_each_match(key, m, f),
        }
    }

    /// Prefetch the index cache lines `h` will probe (no-op for lists).
    #[inline]
    pub fn prefetch(&self, h: u64) {
        if let Store::Hash(slab) = &self.store {
            slab.prefetch(h);
        }
    }

    /// Pre-size the underlying storage for roughly `entries` entries over
    /// `keys` distinct keys (checkpoint restore sizes states up front so
    /// replay does not pay growth rehashes).
    pub fn reserve(&mut self, keys: usize, entries: usize, m: &mut Metrics) {
        match &mut self.store {
            Store::Hash(slab) => slab.reserve(keys, entries, m),
            Store::List(v) => v.reserve(entries.saturating_sub(v.len())),
        }
    }

    /// Slab occupancy diagnostics (`None` for list states).
    pub fn slab_stats(&self) -> Option<SlabStats> {
        match &self.store {
            Store::Hash(slab) => Some(slab.stats()),
            Store::List(_) => None,
        }
    }

    // ----- tiered spill (memory-budgeted hash states) -----

    /// Put this state's slab under a memory budget: entries past
    /// `cfg.budget_bytes` spill to compressed on-disk cold segments and
    /// fault back just-in-time (see [`crate::spill`]). Only hash states
    /// tier; list states are probe-scanned wholesale and stay resident.
    pub fn enable_spill(&mut self, cfg: SpillConfig) -> Result<()> {
        match &mut self.store {
            Store::Hash(slab) => slab.enable_spill(cfg),
            Store::List(_) => Err(JiscError::Internal(
                "spill budget applies to hash states only".into(),
            )),
        }
    }

    /// True if this state's slab has a cold tier attached.
    pub fn spill_enabled(&self) -> bool {
        matches!(&self.store, Store::Hash(slab) if slab.spill_enabled())
    }

    /// Cold-tier occupancy (`None` when spill is disabled or list layout).
    pub fn spill_stats(&self) -> Option<SpillStats> {
        match &self.store {
            Store::Hash(slab) => slab.spill_stats(),
            Store::List(_) => None,
        }
    }

    /// Entries currently resident in the cold tier.
    pub fn cold_entries(&self) -> usize {
        match &self.store {
            Store::Hash(slab) => slab.cold_entries(),
            Store::List(_) => 0,
        }
    }

    /// Estimated hot-tier bytes (see [`crate::slab::HOT_ENTRY_EST_BYTES`]).
    pub fn hot_bytes(&self) -> usize {
        match &self.store {
            Store::Hash(slab) => slab.hot_bytes(),
            Store::List(v) => v.len() * crate::slab::HOT_ENTRY_EST_BYTES,
        }
    }

    /// Wall-clock fault-back latency distribution, if spill is enabled.
    pub fn fault_latency(&self) -> Option<jisc_telemetry::HistogramSnapshot> {
        match &self.store {
            Store::Hash(slab) => slab.fault_latency(),
            Store::List(_) => None,
        }
    }

    /// Path of the cold tier's hash-chained segment manifest, if any.
    pub fn cold_manifest_file(&self) -> Option<std::path::PathBuf> {
        match &self.store {
            Store::Hash(slab) => slab.cold_manifest_file(),
            Store::List(_) => None,
        }
    }

    /// Fault `key`'s cold-resident entries back into the hot tier (no-op
    /// when the key has none). Tier moves are logically neutral: `len` is
    /// unchanged. Returns entries faulted.
    pub fn fault_in_key(&mut self, key: Key, m: &mut Metrics) -> usize {
        match &mut self.store {
            Store::Hash(slab) => slab.fault_in_key(key, m),
            Store::List(_) => 0,
        }
    }

    /// Batch-aware fault-back: one sequential read per touched segment for
    /// the whole key set (the JISC completion discipline applied to cold
    /// state — complete every key the batch will probe, then probe hot).
    pub fn fault_in_keys(&mut self, keys: impl IntoIterator<Item = Key>, m: &mut Metrics) -> usize {
        match &mut self.store {
            Store::Hash(slab) => slab.fault_in_keys(keys, m),
            Store::List(_) => 0,
        }
    }

    /// Fault the entire cold tier back (full-scan paths: theta probes,
    /// snapshots, discard checks, iteration).
    pub fn fault_in_all(&mut self, m: &mut Metrics) -> usize {
        match &mut self.store {
            Store::Hash(slab) => slab.fault_in_all(m),
            Store::List(_) => 0,
        }
    }

    /// Number of entries matching `key` (same accounting as a lookup).
    pub fn match_count(&self, key: Key, m: &mut Metrics) -> usize {
        m.probes += 1;
        match &self.store {
            Store::Hash(slab) => slab.match_count(key, m),
            Store::List(v) => {
                m.nlj_comparisons += v.len() as u64;
                v.iter().filter(|t| t.key() == key).count()
            }
        }
    }

    /// Entries whose key satisfies `pred` against `probe_key`, with the
    /// stored entry's key on the side indicated by `stored_is_left`.
    pub fn scan_theta(
        &self,
        pred: Predicate,
        probe_key: Key,
        stored_is_left: bool,
        m: &mut Metrics,
    ) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.scan_theta_into(pred, probe_key, stored_is_left, m, &mut out);
        out
    }

    /// [`State::scan_theta`], appending into a caller-provided buffer.
    pub fn scan_theta_into(
        &self,
        pred: Predicate,
        probe_key: Key,
        stored_is_left: bool,
        m: &mut Metrics,
        out: &mut Vec<Tuple>,
    ) {
        m.probes += 1;
        let eval = |stored: Key| {
            if stored_is_left {
                pred.eval(stored, probe_key)
            } else {
                pred.eval(probe_key, stored)
            }
        };
        match &self.store {
            Store::List(v) => {
                m.nlj_comparisons += v.len() as u64;
                out.extend(v.iter().filter(|t| eval(t.key())).cloned());
            }
            Store::Hash(slab) => {
                // Theta probe against a hash state (e.g. a scan feeding an
                // NLJ): every entry must be examined; the slab walk is a
                // dense insertion-order sweep.
                m.nlj_comparisons += slab.len() as u64;
                out.extend(slab.iter().filter(|t| eval(t.key())).cloned());
            }
        }
    }

    /// True if at least one entry matches `key` exactly.
    pub fn contains_key(&self, key: Key, m: &mut Metrics) -> bool {
        match &self.store {
            Store::Hash(slab) => {
                m.probes += 1;
                slab.contains_key(key, m)
            }
            Store::List(v) => {
                m.probes += 1;
                m.nlj_comparisons += v.len() as u64;
                v.iter().any(|t| t.key() == key)
            }
        }
    }

    /// Remove all entries containing the base tuple `(stream, seq)`.
    ///
    /// For hash states the search is confined to the `key` bucket (the join
    /// attribute of every constituent equals the entry key under the shared
    /// attribute model); list states scan fully. Returns how many entries
    /// were removed — the hot window-expiry path allocates nothing.
    pub fn remove_containing(
        &mut self,
        stream: StreamId,
        seq: SeqNo,
        key: Key,
        m: &mut Metrics,
    ) -> usize {
        let removed = match &mut self.store {
            Store::Hash(slab) => {
                m.probes += 1;
                slab.remove_containing(stream, seq, key, m)
            }
            Store::List(v) => {
                m.nlj_comparisons += v.len() as u64;
                let before = v.len();
                let counts = &mut self.list_keys;
                v.retain(|t| {
                    let keep = !t.contains_base(stream, seq);
                    if !keep {
                        list_note_removed(counts, t.key());
                    }
                    keep
                });
                before - v.len()
            }
        };
        self.len -= removed;
        m.removals += removed as u64;
        removed
    }

    /// Remove a specific entry identified by lineage (set-difference
    /// suppression). Returns `true` if an entry was removed.
    pub fn remove_by_lineage(&mut self, lin: &Lineage, key: Key, m: &mut Metrics) -> bool {
        let gone = match &mut self.store {
            Store::Hash(slab) => {
                m.probes += 1;
                slab.remove_by_lineage(lin, key, m)
            }
            Store::List(v) => {
                let before = v.len();
                m.nlj_comparisons += before as u64;
                let counts = &mut self.list_keys;
                v.retain(|t| {
                    let keep = t.lineage() != *lin;
                    if !keep {
                        list_note_removed(counts, t.key());
                    }
                    keep
                });
                before - v.len()
            }
        };
        self.len -= gone;
        m.removals += gone as u64;
        gone > 0
    }

    /// Remove every entry stored under `key` (set-difference suppression by
    /// key, [`Payload::SuppressKey`](crate::plan::Payload)). Returns how
    /// many entries were removed.
    pub fn remove_key(&mut self, key: Key, m: &mut Metrics) -> usize {
        let removed = match &mut self.store {
            Store::Hash(slab) => {
                m.probes += 1;
                slab.remove_key(key, m)
            }
            Store::List(v) => {
                m.nlj_comparisons += v.len() as u64;
                let before = v.len();
                v.retain(|t| t.key() != key);
                self.list_keys.remove(&key);
                before - v.len()
            }
        };
        self.len -= removed;
        m.removals += removed as u64;
        removed
    }

    /// Remove every entry whose key hashes into one of `ranges` — the
    /// derived-state side of an elastic range handover. Returns the distinct
    /// keys removed. Pending bookkeeping is untouched; callers that also
    /// track completion debt must follow with
    /// [`State::prune_pending_in_ranges`].
    pub fn extract_key_range(&mut self, ranges: &[KeyRange], m: &mut Metrics) -> Vec<Key> {
        match &mut self.store {
            Store::Hash(slab) => {
                m.probes += 1;
                let (moved, removed) = slab.extract_key_range(ranges, m);
                self.len -= removed;
                m.removals += removed as u64;
                moved
            }
            Store::List(_) => {
                let moved: Vec<Key> = self
                    .list_keys
                    .keys()
                    .copied()
                    .filter(|&k| {
                        let h = hash_key(k);
                        ranges.iter().any(|r| r.contains(h))
                    })
                    .collect();
                for &k in &moved {
                    self.remove_key(k, m);
                }
                moved
            }
        }
    }

    /// Remove all entries whose lineage contains *every* constituent of
    /// `lin` (set-difference suppression propagating upward: any upper entry
    /// built from a suppressed entry must go). Returns how many entries were
    /// removed.
    pub fn remove_superset(&mut self, lin: &Lineage, key: Key, m: &mut Metrics) -> usize {
        let contains_all = |t: &Tuple| lin.parts().iter().all(|(s, q)| t.contains_base(*s, *q));
        let removed = match &mut self.store {
            Store::Hash(slab) => {
                m.probes += 1;
                slab.remove_superset(lin, key, m)
            }
            Store::List(v) => {
                m.nlj_comparisons += v.len() as u64;
                let before = v.len();
                let counts = &mut self.list_keys;
                v.retain(|t| {
                    let keep = !contains_all(t);
                    if !keep {
                        list_note_removed(counts, t.key());
                    }
                    keep
                });
                before - v.len()
            }
        };
        self.len -= removed;
        m.removals += removed as u64;
        removed
    }

    /// Insert `t` unless an entry with identical lineage already exists under
    /// the same key. Used by state completion to merge on-demand-computed
    /// entries with entries that accumulated through normal post-transition
    /// processing (§4.4 discussion). Returns `true` if inserted.
    pub fn insert_if_absent(&mut self, t: Tuple, m: &mut Metrics) -> bool {
        match &mut self.store {
            Store::Hash(slab) => {
                m.probes += 1;
                let inserted = slab.insert_if_absent(t, m);
                if inserted {
                    m.inserts += 1;
                    self.len += 1;
                }
                inserted
            }
            Store::List(v) => {
                let lin = t.lineage();
                m.nlj_comparisons += v.len() as u64;
                if v.iter().any(|e| e.lineage() == lin) {
                    false
                } else {
                    self.insert(t, m);
                    true
                }
            }
        }
    }

    /// Distinct join-attribute values currently present.
    pub fn distinct_keys(&self) -> FxHashSet<Key> {
        match &self.store {
            Store::Hash(slab) => slab.distinct_keys(),
            Store::List(_) => self.list_keys.keys().copied().collect(),
        }
    }

    /// Number of distinct join-attribute values (the §4.3 counter seed).
    /// O(1) for both layouts: hash stores count buckets, list stores read
    /// the maintained per-key count map.
    pub fn distinct_key_count(&self) -> usize {
        match &self.store {
            Store::Hash(slab) => slab.key_count(),
            Store::List(_) => self.list_keys.len(),
        }
    }

    /// Iterate over all entries. Hash states yield global insertion order
    /// (the slab's order ring); list states yield list order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = &Tuple> + '_> {
        match &self.store {
            Store::Hash(slab) => Box::new(slab.iter()),
            Store::List(v) => Box::new(v.iter()),
        }
    }

    /// True if any entry contains a base tuple older than `seq` (used by the
    /// Parallel Track discard check, §3.3).
    pub fn has_entry_older_than(&self, seq: SeqNo, m: &mut Metrics) -> bool {
        let mut checked = 0u64;
        let found = self.iter().any(|t| {
            checked += 1;
            t.min_seq() < seq
        });
        m.discard_checks += checked;
        found
    }

    /// Drop every entry (state discard during migration).
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Hash(slab) => slab.clear(),
            Store::List(v) => v.clear(),
        }
        self.list_keys.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jisc_common::BaseTuple;

    fn bt(stream: u16, seq: SeqNo, key: Key) -> Tuple {
        Tuple::base(BaseTuple::new(StreamId(stream), seq, key, 0))
    }

    #[test]
    fn hash_insert_lookup() {
        let mut m = Metrics::new();
        let mut s = State::new(StoreKind::Hash);
        s.insert(bt(0, 1, 5), &mut m);
        s.insert(bt(0, 2, 5), &mut m);
        s.insert(bt(0, 3, 9), &mut m);
        assert_eq!(s.len(), 3);
        assert_eq!(s.lookup(5, &mut m).len(), 2);
        assert_eq!(s.lookup(9, &mut m).len(), 1);
        assert!(s.lookup(7, &mut m).is_empty());
        assert_eq!(m.inserts, 3);
        assert_eq!(m.probes, 3);
    }

    #[test]
    fn list_lookup_counts_comparisons() {
        let mut m = Metrics::new();
        let mut s = State::new(StoreKind::List);
        for i in 0..4 {
            s.insert(bt(0, i, i), &mut m);
        }
        let hits = s.lookup(2, &mut m);
        assert_eq!(hits.len(), 1);
        assert_eq!(m.nlj_comparisons, 4);
    }

    #[test]
    fn theta_scan_orientation() {
        let mut m = Metrics::new();
        let mut s = State::new(StoreKind::List);
        s.insert(bt(0, 1, 3), &mut m);
        s.insert(bt(0, 2, 8), &mut m);
        // stored keys on the left of `<=`: stored <= 5 matches key 3 only.
        let hits = s.scan_theta(Predicate::KeyLeq, 5, true, &mut m);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key(), 3);
        // probe on the left: 5 <= stored matches key 8 only.
        let hits = s.scan_theta(Predicate::KeyLeq, 5, false, &mut m);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key(), 8);
    }

    #[test]
    fn remove_containing_prunes_bucket() {
        let mut m = Metrics::new();
        let mut s = State::new(StoreKind::Hash);
        let a = bt(0, 1, 5);
        let b = bt(1, 2, 5);
        let ab = Tuple::joined(5, a.clone(), b.clone());
        s.insert(ab, &mut m);
        s.insert(bt(1, 3, 5), &mut m);
        let removed = s.remove_containing(StreamId(0), 1, 5, &mut m);
        assert_eq!(removed, 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup(5, &mut m).len(), 1);
        // removing a non-existent base is a no-op
        assert_eq!(s.remove_containing(StreamId(0), 99, 5, &mut m), 0);
    }

    #[test]
    fn insert_if_absent_dedups_by_lineage() {
        let mut m = Metrics::new();
        let mut s = State::new(StoreKind::Hash);
        let a = bt(0, 1, 5);
        let b = bt(1, 2, 5);
        let ab1 = Tuple::joined(5, a.clone(), b.clone());
        let ab2 = Tuple::joined(5, b, a); // same lineage, different shape
        assert!(s.insert_if_absent(ab1, &mut m));
        assert!(!s.insert_if_absent(ab2, &mut m));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn completeness_counter_lifecycle() {
        let mut s = State::new(StoreKind::Hash);
        assert!(s.is_complete());
        let pend: FxHashSet<Key> = [1u64, 2, 3].into_iter().collect();
        s.mark_incomplete(PendingKeys::Known(pend));
        assert!(!s.is_complete());
        assert_eq!(s.counter(), Some(3));
        assert!(s.needs_completion(2));
        assert!(!s.needs_completion(7)); // never pending -> trivially complete
        assert!(!s.note_key_completed(1));
        assert_eq!(s.counter(), Some(2));
        assert!(!s.note_key_expired(2));
        assert!(s.note_key_completed(3)); // counter hits zero
        assert!(s.is_complete());
        assert_eq!(s.counter(), None);
    }

    #[test]
    fn case3_tracking() {
        let mut s = State::new(StoreKind::Hash);
        s.mark_incomplete(PendingKeys::Unknown {
            completed: Default::default(),
        });
        assert!(s.needs_completion(4));
        assert!(!s.note_key_completed(4));
        assert!(!s.needs_completion(4));
        assert_eq!(s.counter(), None);
        // resolve with a residual set
        let resid: FxHashSet<Key> = [9u64].into_iter().collect();
        assert!(!s.resolve_case3(resid));
        assert_eq!(s.counter(), Some(1));
        assert!(s.note_key_completed(9));
        assert!(s.is_complete());
        // resolving an already-complete state is a no-op success
        assert!(s.resolve_case3(Default::default()));
    }

    #[test]
    fn distinct_keys_and_old_entry_check() {
        let mut m = Metrics::new();
        let mut s = State::new(StoreKind::Hash);
        s.insert(bt(0, 10, 1), &mut m);
        s.insert(bt(0, 11, 1), &mut m);
        s.insert(bt(0, 12, 2), &mut m);
        assert_eq!(s.distinct_key_count(), 2);
        assert!(s.has_entry_older_than(11, &mut m));
        assert!(!s.has_entry_older_than(10, &mut m));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.distinct_key_count(), 0);
    }

    #[test]
    fn list_distinct_key_count_tracks_every_mutation() {
        let mut m = Metrics::new();
        let mut s = State::new(StoreKind::List);
        s.insert(bt(0, 1, 5), &mut m);
        s.insert(bt(0, 2, 5), &mut m);
        s.insert(bt(0, 3, 9), &mut m);
        s.insert(bt(1, 4, 7), &mut m);
        assert_eq!(s.distinct_key_count(), 3);
        assert_eq!(s.distinct_keys(), [5, 9, 7].into_iter().collect());
        // removing one of two key-5 entries keeps the key
        assert!(s.remove_by_lineage(&bt(0, 1, 5).lineage(), 5, &mut m));
        assert_eq!(s.distinct_key_count(), 3);
        // removing the base of the last key-5 entry drops the key
        assert_eq!(s.remove_containing(StreamId(0), 2, 5, &mut m), 1);
        assert_eq!(s.distinct_key_count(), 2);
        assert_eq!(s.remove_key(9, &mut m), 1);
        assert_eq!(s.distinct_key_count(), 1);
        assert_eq!(s.remove_superset(&bt(1, 4, 7).lineage(), 7, &mut m), 1);
        assert_eq!(s.distinct_key_count(), 0);
        s.insert(bt(0, 8, 3), &mut m);
        assert_eq!(s.distinct_key_count(), 1);
        s.clear();
        assert_eq!(s.distinct_key_count(), 0);
    }

    #[test]
    fn for_each_match_and_match_count_agree_with_lookup() {
        let mut m = Metrics::new();
        for kind in [StoreKind::Hash, StoreKind::List] {
            let mut s = State::new(kind);
            s.insert(bt(0, 1, 5), &mut m);
            s.insert(bt(0, 2, 5), &mut m);
            s.insert(bt(0, 3, 9), &mut m);
            let looked = s.lookup(5, &mut m);
            let mut visited = Vec::new();
            s.for_each_match(5, &mut m, |t| visited.push(t.clone()));
            assert_eq!(visited, looked);
            assert_eq!(s.match_count(5, &mut m), 2);
            assert_eq!(s.match_count(4, &mut m), 0);
            let mut buf = vec![bt(9, 99, 99)];
            s.lookup_into(5, &mut m, &mut buf);
            assert_eq!(buf.len(), 3, "lookup_into appends");
        }
    }
}
