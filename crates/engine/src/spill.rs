//! Cold tier of the memory-budgeted two-tier join state: compressed
//! append-only on-disk segments with just-in-time fault-back.
//!
//! The hot tier is the unchanged [`SlabStore`](crate::slab::SlabStore)
//! (SwissTable-over-slab). When a store's estimated hot bytes exceed its
//! [`SpillConfig::budget_bytes`], the slab evicts the oldest entries of its
//! insertion ring — whole oldest prefixes of per-key chains — as one frame
//! appended to this module's *active* segment file, which seals once it
//! reaches [`SpillConfig::segment_target_bytes`] (file creation costs
//! orders of magnitude more than appending on common filesystems, so
//! sustained eviction pays one `open(2)` per sealed segment, not one per
//! eviction run). What stays in memory per cold entry is a ~32-byte
//! `ColdStub` (segment id, entry index, and just enough tuple metadata
//! to answer containment and expiry questions without touching disk); the
//! tuple bytes themselves live in the segment file.
//!
//! The discipline for reading state back mirrors JISC's just-in-time state
//! completion: a probe that misses hot but hits the cold-resident key index
//! does not scan the archive — the probed keys of a whole `flush_run` batch
//! are collected first and faulted back in one sequential segment read
//! ([`ColdTier::fault_keys`]), then the normal batch-probe kernel runs over
//! a hot-only store. Completion fills in keys the *window* owes a state;
//! fault-back fills in keys the *disk* owes the window.
//!
//! Segment files use no external dependencies: a magic header, then one
//! (durable checkpoints) or many (cold tier) length-prefixed frames of
//! per-column delta + varint encoded tuple data (bases deduplicated and
//! stored columnar; joined trees as preorder structure streams over base
//! indices), each frame followed by its own FNV-1a hash — so a partially
//! filled active segment reads back exactly like a sealed one.
//! A hash-chained manifest (each record chains the FNV of its predecessor,
//! JACS-style signed-header chaining) makes on-disk state tamper-evident;
//! [`DurableCheckpointStore`] folds the PR-3 [`BaseStateSnapshot`]
//! checkpoints into the same segment format so checkpoints survive process
//! restarts, and recovery verifies the whole chain before trusting a byte.
//!
//! Expiring a fully-dead cold segment is an O(1) file drop; a segment whose
//! live fraction falls below [`SpillConfig::compact_live_frac`] is
//! rewritten in place (live entries re-encoded into a fresh segment, stubs
//! repointed, old file dropped).
//!
//! I/O errors on the cold path are fatal to the owning engine (a panic,
//! surfaced like any worker panic): the tier's files are process-lifetime
//! scratch, and there is no meaningful way to continue a join whose state
//! is unreadable. Only [`DurableCheckpointStore`] — whose files *are*
//! expected to outlive processes and suffer corruption — returns `Result`s.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jisc_common::{BaseTuple, FxHashMap, JiscError, Key, Metrics, Result, SeqNo, StreamId, Tuple};
use jisc_telemetry::{AtomicHistogram, HistogramSnapshot};

use crate::snapshot::BaseStateSnapshot;

/// Single-frame segment file magic (durable checkpoints; versioned).
const MAGIC: &[u8; 6] = b"JSPL1\n";
/// Multi-frame segment file magic (scratch cold tier): after the magic,
/// any number of `[uvarint len][frame payload][8-byte LE FNV of payload]`
/// records. Each frame is self-delimited and self-verified, so a
/// partially filled (still-active) segment reads back with the same code
/// path as a sealed one.
const MAGIC2: &[u8; 6] = b"JSPL2\n";

/// Tuning and placement of one store's cold tier.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Hot-tier byte budget; the slab evicts oldest-first past this.
    pub budget_bytes: usize,
    /// Target encoded bytes per sealed segment (eviction runs accumulate
    /// at least the budget hysteresis, so small budgets mean small files).
    pub segment_target_bytes: usize,
    /// Rewrite a segment when its live fraction drops below this.
    pub compact_live_frac: f64,
    /// Directory the segment files live in (created on demand).
    pub dir: PathBuf,
}

impl SpillConfig {
    /// A config with default tuning for the given budget and directory.
    pub fn new(budget_bytes: usize, dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            budget_bytes,
            segment_target_bytes: 64 * 1024,
            compact_live_frac: 0.5,
            dir: dir.into(),
        }
    }
}

/// Occupancy snapshot of one cold tier (see [`ColdTier::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Cold entries currently stub-indexed.
    pub entries: usize,
    /// Distinct keys with at least one cold entry.
    pub keys: usize,
    /// Sealed segments currently referenced by this tier.
    pub segments: usize,
    /// Sum of sealed segment file sizes in bytes.
    pub disk_bytes: u64,
}

// ---------------------------------------------------------------------------
// FNV-1a and varint primitives
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `seed` (chain with the previous
/// record's hash; start fresh from [`fnv1a`]).
pub fn fnv1a_chain(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Plain FNV-1a of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_chain(FNV_OFFSET, bytes)
}

#[inline]
fn put_uv(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

#[inline]
fn get_uv(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| JiscError::Internal("spill frame: truncated varint".into()))?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(JiscError::Internal("spill frame: varint overflow".into()));
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Delta-encode `v` against `prev` (wrapping), update `prev`.
#[inline]
fn put_delta(buf: &mut Vec<u8>, prev: &mut u64, v: u64) {
    put_uv(buf, zigzag(v.wrapping_sub(*prev) as i64));
    *prev = v;
}

#[inline]
fn get_delta(buf: &[u8], pos: &mut usize, prev: &mut u64) -> Result<u64> {
    let d = unzigzag(get_uv(buf, pos)?);
    let v = prev.wrapping_add(d as u64);
    *prev = v;
    Ok(v)
}

// ---------------------------------------------------------------------------
// Frame codec: Vec<(Key, Tuple)>  <->  compressed bytes
// ---------------------------------------------------------------------------

/// Encode entries into one frame payload. Bases are deduplicated (by
/// `Arc` identity then value) and stored as four delta/varint columns;
/// each entry is its key plus a preorder structure stream over base
/// indices (`0` = joined node, `1 + i` = base `i`).
fn encode_entries(entries: &[(Key, Tuple)]) -> Vec<u8> {
    // Base-state eviction batches are pure `Tuple::Base` rows, where the
    // dedup map buys nothing (each base appears once) while costing two
    // hash lookups per entry; encode those positionally. The decoder is
    // unchanged — dedup is a compression choice, not part of the format.
    if entries.iter().all(|(_, t)| matches!(t, Tuple::Base(_))) {
        return encode_base_entries(entries);
    }
    let mut bases: Vec<Arc<BaseTuple>> = Vec::new();
    let mut base_ix: FxHashMap<(u16, SeqNo, Key, u64), u32> = FxHashMap::default();
    for (_, t) in entries {
        t.for_each_base(&mut |b| {
            let sig = (b.stream.0, b.seq, b.key, b.payload);
            base_ix.entry(sig).or_insert_with(|| {
                bases.push(Arc::clone(b));
                (bases.len() - 1) as u32
            });
        });
    }

    let mut buf = Vec::with_capacity(entries.len() * 8 + bases.len() * 6);
    put_uv(&mut buf, bases.len() as u64);
    // Columnar base block: run-length streams, delta-zigzag seq/key/payload.
    let (mut ps, mut pk, mut pp) = (0u64, 0u64, 0u64);
    for b in &bases {
        put_uv(&mut buf, b.stream.0 as u64);
    }
    for b in &bases {
        put_delta(&mut buf, &mut ps, b.seq);
    }
    for b in &bases {
        put_delta(&mut buf, &mut pk, b.key);
    }
    for b in &bases {
        put_delta(&mut buf, &mut pp, b.payload);
    }

    put_uv(&mut buf, entries.len() as u64);
    let mut prev_key = 0u64;
    for (key, t) in entries {
        put_delta(&mut buf, &mut prev_key, *key);
        encode_tree(&mut buf, t, &base_ix);
    }
    buf
}

/// [`encode_entries`] for an all-base batch: base `i` is entry `i`, so
/// both the base block and the tree refs are written straight through.
fn encode_base_entries(entries: &[(Key, Tuple)]) -> Vec<u8> {
    let as_base = |t: &Tuple| match t {
        Tuple::Base(b) => Arc::clone(b),
        Tuple::Joined(_) => unreachable!("caller checked all-base"),
    };
    let mut buf = Vec::with_capacity(entries.len() * 8);
    put_uv(&mut buf, entries.len() as u64);
    let (mut ps, mut pk, mut pp) = (0u64, 0u64, 0u64);
    for (_, t) in entries {
        put_uv(&mut buf, as_base(t).stream.0 as u64);
    }
    for (_, t) in entries {
        put_delta(&mut buf, &mut ps, as_base(t).seq);
    }
    for (_, t) in entries {
        put_delta(&mut buf, &mut pk, as_base(t).key);
    }
    for (_, t) in entries {
        put_delta(&mut buf, &mut pp, as_base(t).payload);
    }
    put_uv(&mut buf, entries.len() as u64);
    let mut prev_key = 0u64;
    for (i, (key, _)) in entries.iter().enumerate() {
        put_delta(&mut buf, &mut prev_key, *key);
        put_uv(&mut buf, 1 + i as u64);
    }
    buf
}

fn encode_tree(buf: &mut Vec<u8>, t: &Tuple, base_ix: &FxHashMap<(u16, SeqNo, Key, u64), u32>) {
    match t {
        Tuple::Base(b) => {
            let i = base_ix[&(b.stream.0, b.seq, b.key, b.payload)];
            put_uv(buf, 1 + i as u64);
        }
        Tuple::Joined(j) => {
            put_uv(buf, 0);
            put_uv(buf, j.key);
            encode_tree(buf, &j.left, base_ix);
            encode_tree(buf, &j.right, base_ix);
        }
    }
}

/// Decode a frame payload back into `(key, tuple)` entries, sharing one
/// `Arc<BaseTuple>` per deduplicated base (as the hot store would).
fn decode_entries(buf: &[u8]) -> Result<Vec<(Key, Tuple)>> {
    let mut pos = 0usize;
    let n_base = get_uv(buf, &mut pos)? as usize;
    let mut streams = Vec::with_capacity(n_base);
    for _ in 0..n_base {
        streams.push(get_uv(buf, &mut pos)? as u16);
    }
    let (mut ps, mut pk, mut pp) = (0u64, 0u64, 0u64);
    let mut seqs = Vec::with_capacity(n_base);
    for _ in 0..n_base {
        seqs.push(get_delta(buf, &mut pos, &mut ps)?);
    }
    let mut keys = Vec::with_capacity(n_base);
    for _ in 0..n_base {
        keys.push(get_delta(buf, &mut pos, &mut pk)?);
    }
    let mut bases = Vec::with_capacity(n_base);
    for i in 0..n_base {
        let payload = get_delta(buf, &mut pos, &mut pp)?;
        bases.push(Tuple::base(BaseTuple::new(
            StreamId(streams[i]),
            seqs[i],
            keys[i],
            payload,
        )));
    }

    let n = get_uv(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut prev_key = 0u64;
    for _ in 0..n {
        let key = get_delta(buf, &mut pos, &mut prev_key)?;
        let t = decode_tree(buf, &mut pos, &bases)?;
        out.push((key, t));
    }
    if pos != buf.len() {
        return Err(JiscError::Internal(
            "spill frame: trailing garbage after last entry".into(),
        ));
    }
    Ok(out)
}

fn decode_tree(buf: &[u8], pos: &mut usize, bases: &[Tuple]) -> Result<Tuple> {
    let tag = get_uv(buf, pos)?;
    if tag == 0 {
        let key = get_uv(buf, pos)?;
        let left = decode_tree(buf, pos, bases)?;
        let right = decode_tree(buf, pos, bases)?;
        Ok(Tuple::joined(key, left, right))
    } else {
        let i = (tag - 1) as usize;
        bases
            .get(i)
            .cloned()
            .ok_or_else(|| JiscError::Internal("spill frame: base index out of range".into()))
    }
}

/// Write one segment file: magic, length-prefixed frame, FNV trailer.
/// Write one framed, FNV-footed segment file. `sync` forces the bytes to
/// stable storage before returning: required for durable checkpoints
/// (their contract is surviving a process crash), skipped for scratch-tier
/// spill segments — those cache live in-process state, so read-back only
/// needs the page cache, and an fsync per sealed segment would dominate
/// eviction-heavy ingest.
fn write_segment_file(path: &Path, payload: &[u8], sync: bool) -> Result<u64> {
    let mut bytes = Vec::with_capacity(MAGIC.len() + payload.len() + 18);
    bytes.extend_from_slice(MAGIC);
    put_uv(&mut bytes, payload.len() as u64);
    bytes.extend_from_slice(payload);
    let h = fnv1a(&bytes);
    bytes.extend_from_slice(&h.to_le_bytes());
    let mut f = fs::File::create(path).map_err(|e| io_err("create segment", path, &e))?;
    f.write_all(&bytes)
        .and_then(|()| if sync { f.sync_all() } else { Ok(()) })
        .map_err(|e| io_err("write segment", path, &e))?;
    Ok(bytes.len() as u64)
}

/// Read a multi-frame cold-tier segment (sealed *or* still active),
/// verifying each frame's FNV and concatenating the decoded entries in
/// frame order — stub `idx` values are segment-global across frames.
fn read_segment_frames(path: &Path) -> Result<Vec<(Key, Tuple)>> {
    let bytes = fs::read(path).map_err(|e| io_err("read segment", path, &e))?;
    if bytes.len() < MAGIC2.len() || &bytes[..MAGIC2.len()] != MAGIC2 {
        return Err(JiscError::Internal(format!(
            "segment {}: bad magic or truncated",
            path.display()
        )));
    }
    let mut pos = MAGIC2.len();
    let mut out = Vec::new();
    while pos < bytes.len() {
        let len = get_uv(&bytes, &mut pos)? as usize;
        if pos + len + 8 > bytes.len() {
            return Err(JiscError::Internal(format!(
                "segment {}: truncated frame",
                path.display()
            )));
        }
        let payload = &bytes[pos..pos + len];
        let want = u64::from_le_bytes(bytes[pos + len..pos + len + 8].try_into().expect("8 bytes"));
        if fnv1a(payload) != want {
            return Err(JiscError::Internal(format!(
                "segment {}: frame checksum mismatch",
                path.display()
            )));
        }
        out.extend(decode_entries(payload)?);
        pos += len + 8;
    }
    Ok(out)
}

/// Read and verify one segment file, returning the frame payload.
fn read_segment_file(path: &Path) -> Result<Vec<u8>> {
    let bytes = fs::read(path).map_err(|e| io_err("read segment", path, &e))?;
    if bytes.len() < MAGIC.len() + 9 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(JiscError::Internal(format!(
            "segment {}: bad magic or truncated",
            path.display()
        )));
    }
    let body_end = bytes.len() - 8;
    let want = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a(&bytes[..body_end]) != want {
        return Err(JiscError::Internal(format!(
            "segment {}: FNV trailer mismatch (corrupt)",
            path.display()
        )));
    }
    let mut pos = MAGIC.len();
    let len = get_uv(&bytes[..body_end], &mut pos)? as usize;
    if pos + len != body_end {
        return Err(JiscError::Internal(format!(
            "segment {}: frame length {} disagrees with file size",
            path.display(),
            len
        )));
    }
    Ok(bytes[pos..body_end].to_vec())
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> JiscError {
    JiscError::Internal(format!("spill {what} {}: {e}", path.display()))
}

/// Process-unique instance ids: clones of a spilled store write their new
/// segments under a fresh id so two owners never collide on file names.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

fn next_instance() -> u64 {
    NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Segments and stubs
// ---------------------------------------------------------------------------

/// A sealed, immutable segment file. Shared by clones of a store via
/// `Arc`; the file is unlinked when the last owner drops.
#[derive(Debug)]
struct SegmentFile {
    path: PathBuf,
}

impl Drop for SegmentFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StubKind {
    /// A base entry: exact `(stream, seq)`, removable without disk I/O.
    Base { stream: StreamId, seq: SeqNo },
    /// A joined entry: only the constituent seq range is known in memory.
    Joined { seq_lo: SeqNo, seq_hi: SeqNo },
}

/// In-memory remnant of one spilled entry (~32 bytes): where it sleeps and
/// what expiry/containment questions it can answer without a read.
#[derive(Debug, Clone, Copy)]
struct ColdStub {
    seg: u32,
    /// Entry index within the segment's frame.
    idx: u32,
    kind: StubKind,
}

/// A key's cold stubs. Nearly every key holds exactly one cold entry
/// (base states spill one row per key per stream), so the single-stub
/// case is stored inline — a heap `Vec` per evicted key was a measurable
/// slice of per-entry eviction cost under sustained spill.
#[derive(Debug, Clone)]
enum StubList {
    One(ColdStub),
    Many(Vec<ColdStub>),
}

impl StubList {
    #[inline]
    fn len(&self) -> usize {
        match self {
            StubList::One(_) => 1,
            StubList::Many(v) => v.len(),
        }
    }

    #[inline]
    fn as_slice(&self) -> &[ColdStub] {
        match self {
            StubList::One(s) => std::slice::from_ref(s),
            StubList::Many(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [ColdStub] {
        match self {
            StubList::One(s) => std::slice::from_mut(s),
            StubList::Many(v) => v,
        }
    }

    #[inline]
    fn push(&mut self, s: ColdStub) {
        match self {
            StubList::One(first) => *self = StubList::Many(vec![*first, s]),
            StubList::Many(v) => v.push(s),
        }
    }

    /// Remove the stub at `pos`; returns `true` when the list emptied
    /// (the caller then drops the key from the index).
    fn remove(&mut self, pos: usize) -> bool {
        match self {
            StubList::One(_) => {
                debug_assert_eq!(pos, 0, "single-stub list has only position 0");
                true
            }
            StubList::Many(v) => {
                v.remove(pos);
                v.is_empty()
            }
        }
    }
}

#[derive(Debug, Clone)]
struct SegMeta {
    file: Arc<SegmentFile>,
    entries: u32,
    dead: u32,
    bytes: u64,
    /// Distinct keys with entries in this segment (for compaction's stub
    /// repointing; duplicates allowed, harmless).
    keys: Vec<Key>,
}

// ---------------------------------------------------------------------------
// The cold tier
// ---------------------------------------------------------------------------

/// The on-disk cold tier of one [`SlabStore`](crate::slab::SlabStore):
/// sealed segments plus the in-memory stub index over them.
#[derive(Debug)]
/// The one segment file currently open for appends. Creating a file is
/// orders of magnitude more expensive than appending to one on common
/// filesystems, so eviction batches append frames here until the segment
/// reaches its target size and is sealed; fault-back reads it through the
/// same multi-frame reader as sealed segments (each frame is
/// self-delimited and self-verified).
struct ActiveSeg {
    seg: u32,
    name: String,
    file: fs::File,
    /// Running chain over frame payloads — becomes the manifest record's
    /// content hash at seal.
    fnv: u64,
}

#[derive(Debug)]
pub struct ColdTier {
    cfg: SpillConfig,
    instance: u64,
    next_seg: u32,
    next_file_ord: u64,
    active: Option<ActiveSeg>,
    segs: FxHashMap<u32, SegMeta>,
    index: FxHashMap<Key, StubList>,
    entries: usize,
    disk_bytes: u64,
    /// Manifest chain hash after the last appended record.
    manifest_chain: u64,
    /// Open append handle to the manifest ledger; kept across segment
    /// seals so sustained eviction pays one `open(2)` total, not one per
    /// segment. `None` until the first record lands.
    manifest: Option<fs::File>,
    /// Wall-clock nanoseconds per fault-back batch (JIT state completion
    /// latency of the disk tier). Wall-clock, so deliberately *not* part of
    /// [`Metrics`] — mirrored into the `index:` explain footer instead.
    fault_ns: AtomicHistogram,
}

impl Clone for ColdTier {
    fn clone(&self) -> Self {
        ColdTier {
            cfg: self.cfg.clone(),
            instance: next_instance(),
            next_seg: self.next_seg,
            next_file_ord: 0,
            // The clone never appends to the original's active file — its
            // next spill opens a segment of its own. It can still *read*
            // the shared file: extra frames the original appends later sit
            // past every stub index the clone registered.
            active: None,
            segs: self.segs.clone(),
            index: self.index.clone(),
            entries: self.entries,
            disk_bytes: self.disk_bytes,
            manifest_chain: FNV_OFFSET,
            manifest: None,
            fault_ns: AtomicHistogram::new(),
        }
    }
}

impl ColdTier {
    /// Open a tier under `cfg.dir` (created if missing).
    pub fn new(cfg: SpillConfig) -> Result<Self> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create dir", &cfg.dir, &e))?;
        Ok(ColdTier {
            cfg,
            instance: next_instance(),
            next_seg: 0,
            next_file_ord: 0,
            active: None,
            segs: FxHashMap::default(),
            index: FxHashMap::default(),
            entries: 0,
            disk_bytes: 0,
            manifest_chain: FNV_OFFSET,
            manifest: None,
            fault_ns: AtomicHistogram::new(),
        })
    }

    /// The tier's configuration.
    pub fn config(&self) -> &SpillConfig {
        &self.cfg
    }

    /// Occupancy snapshot.
    pub fn stats(&self) -> SpillStats {
        SpillStats {
            entries: self.entries,
            keys: self.index.len(),
            segments: self.segs.len(),
            disk_bytes: self.disk_bytes,
        }
    }

    /// Cold entries currently indexed.
    #[inline]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// True if no cold entries exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Does `key` have cold entries?
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.index.contains_key(&key)
    }

    /// Cold entries under `key`.
    #[inline]
    pub fn count(&self, key: Key) -> usize {
        self.index.get(&key).map_or(0, StubList::len)
    }

    /// Distinct keys with cold entries.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.index.keys().copied()
    }

    /// Does `key` hold any *joined* cold entry whose constituent seq range
    /// covers `seq`? Such an entry can only be expired by faulting it back
    /// (lineage lives on disk); base entries never need this.
    pub fn joined_may_contain(&self, key: Key, seq: SeqNo) -> bool {
        self.index.get(&key).is_some_and(|stubs| {
            stubs.as_slice().iter().any(|s| match s.kind {
                StubKind::Joined { seq_lo, seq_hi } => seq_lo <= seq && seq <= seq_hi,
                StubKind::Base { .. } => false,
            })
        })
    }

    /// Fault-latency histogram (nanoseconds per fault-back batch).
    pub fn fault_latency(&self) -> HistogramSnapshot {
        self.fault_ns.snapshot()
    }

    fn manifest_path(&self) -> PathBuf {
        self.cfg.dir.join(format!("manifest-{}.log", self.instance))
    }

    /// Path of this tier's segment manifest, if any record was written
    /// (the soak harness uploads it next to the flight dump on failure).
    pub fn manifest_file(&self) -> Option<PathBuf> {
        self.manifest.is_some().then(|| self.manifest_path())
    }

    /// Append a hash-chained record for a sealed segment. Best-effort for
    /// the scratch tier (the authoritative chain verification lives in
    /// [`DurableCheckpointStore`]); the file doubles as the soak harness's
    /// leak ledger.
    fn manifest_append(&mut self, name: &str, bytes: u64, file_fnv: u64) {
        let record = format!("seg {name} {bytes} {file_fnv:016x}");
        self.manifest_chain = fnv1a_chain(self.manifest_chain, record.as_bytes());
        let line = format!("{record} {:016x}\n", self.manifest_chain);
        if self.manifest.is_none() {
            let path = self.manifest_path();
            self.manifest = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .ok();
        }
        if let Some(f) = self.manifest.as_mut() {
            if f.write_all(line.as_bytes()).is_err() {
                self.manifest = None;
            }
        }
    }

    /// Seal `batch` (oldest-first eviction order) into one new segment and
    /// index a stub per entry. The caller has already unlinked the entries
    /// from the hot tier.
    pub fn spill_batch(&mut self, batch: &[(Key, Tuple)], m: &mut Metrics) {
        if batch.is_empty() {
            return;
        }
        let (seg, base_idx) = self.append_frame(batch, m).expect("spill I/O is fatal");
        for (i, (key, t)) in batch.iter().enumerate() {
            let kind = match t {
                Tuple::Base(b) => StubKind::Base {
                    stream: b.stream,
                    seq: b.seq,
                },
                Tuple::Joined(_) => StubKind::Joined {
                    seq_lo: t.min_seq(),
                    seq_hi: t.max_seq(),
                },
            };
            let stub = ColdStub {
                seg,
                idx: (base_idx + i) as u32,
                kind,
            };
            self.index
                .entry(*key)
                .and_modify(|l| l.push(stub))
                .or_insert(StubList::One(stub));
        }
        self.entries += batch.len();
        m.spill_evictions += batch.len() as u64;
    }

    /// Encode `batch` as one frame and append it to the active segment
    /// (opened on demand — file *creation* is the expensive disk op, so
    /// one create is amortized over every frame until the segment reaches
    /// its target size and seals). Returns the segment id and the
    /// segment-global index of the frame's first entry. Does not touch the
    /// stub index.
    fn append_frame(&mut self, batch: &[(Key, Tuple)], m: &mut Metrics) -> Result<(u32, usize)> {
        let payload = encode_entries(batch);
        if self.active.is_none() {
            let name = format!("seg-{}-{}.jspl", self.instance, self.next_file_ord);
            self.next_file_ord += 1;
            let path = self.cfg.dir.join(&name);
            let mut file =
                fs::File::create(&path).map_err(|e| io_err("create segment", &path, &e))?;
            file.write_all(MAGIC2)
                .map_err(|e| io_err("write segment", &path, &e))?;
            let seg = self.next_seg;
            self.next_seg += 1;
            self.segs.insert(
                seg,
                SegMeta {
                    file: Arc::new(SegmentFile { path }),
                    entries: 0,
                    dead: 0,
                    bytes: MAGIC2.len() as u64,
                    keys: Vec::new(),
                },
            );
            self.disk_bytes += MAGIC2.len() as u64;
            self.active = Some(ActiveSeg {
                seg,
                name,
                file,
                fnv: FNV_OFFSET,
            });
        }
        let active = self.active.as_mut().expect("opened above");
        let seg = active.seg;
        let mut frame = Vec::with_capacity(payload.len() + 18);
        put_uv(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        active
            .file
            .write_all(&frame)
            .map_err(|e| JiscError::Internal(format!("append segment frame: {e}")))?;
        active.fnv = fnv1a_chain(active.fnv, &payload);
        let meta = self.segs.get_mut(&seg).expect("active segment registered");
        let base_idx = meta.entries as usize;
        meta.entries += batch.len() as u32;
        meta.bytes += frame.len() as u64;
        meta.keys.extend(batch.iter().map(|&(k, _)| k));
        meta.keys.dedup();
        self.disk_bytes += frame.len() as u64;
        if meta.bytes >= self.cfg.segment_target_bytes as u64 {
            self.seal_active(m);
        }
        Ok((seg, base_idx))
    }

    /// Close the active segment and append its hash-chained manifest
    /// record; subsequent spills open a fresh segment.
    fn seal_active(&mut self, m: &mut Metrics) {
        let Some(active) = self.active.take() else {
            return;
        };
        let bytes = self.segs.get(&active.seg).map_or(0, |meta| meta.bytes);
        self.manifest_append(&active.name, bytes, active.fnv);
        m.spill_segments_sealed += 1;
    }

    /// Fault back every cold entry of the requested keys in one pass:
    /// group the needed stubs by segment, read each touched segment
    /// sequentially once, and return each key's tuples oldest-first. The
    /// stubs are consumed; segments whose last live entry left are dropped
    /// (O(1) unlink), under-occupied ones compacted.
    pub fn fault_keys(&mut self, wanted: &[Key], m: &mut Metrics) -> Vec<(Key, Vec<Tuple>)> {
        let t0 = Instant::now();
        // (key, stubs) for each requested cold-resident key.
        let mut claimed: Vec<(Key, StubList)> = Vec::new();
        for &k in wanted {
            if let Some(stubs) = self.index.remove(&k) {
                claimed.push((k, stubs));
            }
        }
        if claimed.is_empty() {
            return Vec::new();
        }
        // One sequential read per touched segment.
        let mut by_seg: FxHashMap<u32, Vec<(usize, usize, u32)>> = FxHashMap::default();
        for (ki, (_, stubs)) in claimed.iter().enumerate() {
            for (si, s) in stubs.as_slice().iter().enumerate() {
                by_seg.entry(s.seg).or_default().push((ki, si, s.idx));
            }
        }
        // Decode each touched segment once, writing tuples into their
        // per-key positions (stub order == per-key insertion order).
        let mut slots_out: Vec<Vec<Option<Tuple>>> = claimed
            .iter()
            .map(|(_, stubs)| vec![None; stubs.len()])
            .collect();
        let mut segs_read = 0u64;
        for (&seg, slots) in &by_seg {
            let meta = self.segs.get(&seg).expect("stub references live segment");
            let entries = read_segment_frames(&meta.file.path).expect("spill I/O is fatal");
            segs_read += 1;
            for &(ki, si, idx) in slots {
                slots_out[ki][si] = Some(entries[idx as usize].1.clone());
            }
        }
        let out: Vec<(Key, Vec<Tuple>)> = claimed
            .iter()
            .zip(slots_out)
            .map(|((k, _), ts)| {
                (
                    *k,
                    ts.into_iter()
                        .map(|t| t.expect("every stub resolved by a segment read"))
                        .collect(),
                )
            })
            .collect();
        // Account the consumed stubs against their segments.
        let mut dead_by_seg: FxHashMap<u32, u32> = FxHashMap::default();
        for (_, stubs) in &claimed {
            for s in stubs.as_slice() {
                *dead_by_seg.entry(s.seg).or_default() += 1;
            }
        }
        let faulted: usize = claimed.iter().map(|(_, s)| s.len()).sum();
        self.entries -= faulted;
        for (seg, dead) in dead_by_seg {
            self.note_dead(seg, dead, m);
        }
        m.spill_faults += faulted as u64;
        m.spill_fault_reads += segs_read;
        self.fault_ns.record(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Remove the cold *base* entry `(stream, seq)` under `key` without
    /// any disk read (expiry of a spilled scan entry). Returns how many
    /// entries went (0 or 1 — a base is inserted once).
    pub fn remove_base(
        &mut self,
        key: Key,
        stream: StreamId,
        seq: SeqNo,
        m: &mut Metrics,
    ) -> usize {
        let Some(stubs) = self.index.get_mut(&key) else {
            return 0;
        };
        let Some(pos) = stubs.as_slice().iter().position(|s| {
            matches!(s.kind, StubKind::Base { stream: st, seq: sq } if st == stream && sq == seq)
        }) else {
            return 0;
        };
        let seg = stubs.as_slice()[pos].seg;
        if stubs.remove(pos) {
            self.index.remove(&key);
        }
        self.entries -= 1;
        self.note_dead(seg, 1, m);
        1
    }

    /// Drop every cold entry under `key` without reading it (migration /
    /// range extraction of keys whose tuples are not needed). Returns how
    /// many entries went.
    pub fn remove_key(&mut self, key: Key, m: &mut Metrics) -> usize {
        let Some(stubs) = self.index.remove(&key) else {
            return 0;
        };
        let mut dead_by_seg: FxHashMap<u32, u32> = FxHashMap::default();
        for s in stubs.as_slice() {
            *dead_by_seg.entry(s.seg).or_default() += 1;
        }
        self.entries -= stubs.len();
        for (seg, dead) in dead_by_seg {
            self.note_dead(seg, dead, m);
        }
        stubs.len()
    }

    /// Drop all segments and stubs (hot-store `clear`).
    pub fn clear(&mut self) {
        self.active = None;
        self.segs.clear();
        self.index.clear();
        self.entries = 0;
        self.disk_bytes = 0;
    }

    /// Record `dead` newly dead entries in `seg`; fully dead segments are
    /// dropped in O(1) (the file unlinks when its last owner lets go),
    /// under-occupied ones are compacted.
    fn note_dead(&mut self, seg: u32, dead: u32, m: &mut Metrics) {
        let (fully_dead, needs_compact) = {
            let meta = self.segs.get_mut(&seg).expect("dead note on live segment");
            meta.dead += dead;
            debug_assert!(meta.dead <= meta.entries);
            let live = (meta.entries - meta.dead) as f64;
            (
                meta.dead == meta.entries,
                meta.entries >= 4 && live / (meta.entries as f64) < self.cfg.compact_live_frac,
            )
        };
        let is_active = self.active.as_ref().is_some_and(|a| a.seg == seg);
        if fully_dead {
            if is_active {
                // Close the append handle before the meta's Arc drop
                // unlinks the file.
                self.active = None;
            }
            let meta = self.segs.remove(&seg).expect("present");
            self.disk_bytes -= meta.bytes;
            m.spill_segments_dropped += 1;
        } else if needs_compact {
            if is_active {
                // Compaction rewrites a closed file; seal first. The live
                // survivors then land in a fresh active segment.
                self.seal_active(m);
            }
            self.compact(seg, m);
        }
    }

    /// Rewrite `seg`'s live entries into a fresh segment and repoint their
    /// stubs in place (per-key order is untouched). The old file drops.
    fn compact(&mut self, seg: u32, m: &mut Metrics) {
        let meta = self.segs.get(&seg).expect("compact live segment").clone();
        let entries = read_segment_frames(&meta.file.path).expect("spill I/O is fatal");
        // Live stub locations pointing into `seg`: (key, position in the
        // key's stub vec, entry idx).
        let mut live: Vec<(Key, usize, u32)> = Vec::new();
        let mut seen = jisc_common::FxHashSet::default();
        for &k in &meta.keys {
            if !seen.insert(k) {
                continue;
            }
            if let Some(stubs) = self.index.get(&k) {
                for (pos, s) in stubs.as_slice().iter().enumerate() {
                    if s.seg == seg {
                        live.push((k, pos, s.idx));
                    }
                }
            }
        }
        if live.is_empty() {
            // All claimed elsewhere; nothing to rewrite.
            let meta = self.segs.remove(&seg).expect("present");
            self.disk_bytes -= meta.bytes;
            m.spill_segments_dropped += 1;
            return;
        }
        let batch: Vec<(Key, Tuple)> = live
            .iter()
            .map(|&(k, _, idx)| (k, entries[idx as usize].1.clone()))
            .collect();
        // Survivors ride the append path: they join the current active
        // segment (opening one if needed) rather than forcing a file
        // create per compaction.
        let (new_seg, base_idx) = self.append_frame(&batch, m).expect("spill I/O is fatal");
        for (i, &(k, pos, _)) in live.iter().enumerate() {
            let stubs = self
                .index
                .get_mut(&k)
                .expect("live stub key")
                .as_mut_slice();
            stubs[pos].seg = new_seg;
            stubs[pos].idx = (base_idx + i) as u32;
        }
        let old = self.segs.remove(&seg).expect("present");
        self.disk_bytes -= old.bytes;
        m.spill_compactions += 1;
        m.spill_segments_dropped += 1;
    }
}

// ---------------------------------------------------------------------------
// Durable checkpoints
// ---------------------------------------------------------------------------

/// Durable, hash-chain-verified checkpoint store: folds the PR-3
/// [`BaseStateSnapshot`] into the same segment format the cold tier uses,
/// so checkpoints survive process restarts.
///
/// Layout under `dir`:
/// * `ckpt-<id>.jspl` — one snapshot per file (magic + frame + FNV trailer)
/// * `MANIFEST` — one record per persisted checkpoint, each carrying the
///   FNV of its file payload and a chain hash over all prior records
///   (JACS-style signed-header chaining). Recovery re-derives the chain
///   and every file hash; a single flipped byte anywhere is rejected.
#[derive(Debug)]
pub struct DurableCheckpointStore {
    dir: PathBuf,
    chain: u64,
    next_id: u64,
}

/// One verified manifest record.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestRecord {
    id: u64,
    seq_tag: u64,
    bytes: u64,
    file_fnv: u64,
}

impl DurableCheckpointStore {
    /// Manifest path under a checkpoint directory.
    pub fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("MANIFEST")
    }

    /// Open (or create) a checkpoint store, verifying any existing
    /// manifest chain first.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, &e))?;
        let (chain, records) = Self::load_manifest(&dir)?;
        let next_id = records.last().map_or(0, |r| r.id + 1);
        Ok(DurableCheckpointStore {
            dir,
            chain,
            next_id,
        })
    }

    fn load_manifest(dir: &Path) -> Result<(u64, Vec<ManifestRecord>)> {
        let path = Self::manifest_path(dir);
        let mut chain = FNV_OFFSET;
        let mut records = Vec::new();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((chain, records)),
            Err(e) => return Err(io_err("read manifest", &path, &e)),
        };
        for (ln, line) in text.lines().enumerate() {
            let bad = |what: &str| {
                JiscError::Internal(format!(
                    "checkpoint manifest {}:{}: {what}",
                    path.display(),
                    ln + 1
                ))
            };
            let fields: Vec<&str> = line.split(' ').collect();
            if fields.len() != 6 || fields[0] != "ckpt" {
                return Err(bad("malformed record"));
            }
            let id: u64 = fields[1].parse().map_err(|_| bad("bad id"))?;
            let seq_tag: u64 = fields[2].parse().map_err(|_| bad("bad seq tag"))?;
            let bytes: u64 = fields[3].parse().map_err(|_| bad("bad byte count"))?;
            let file_fnv = u64::from_str_radix(fields[4], 16).map_err(|_| bad("bad file hash"))?;
            let want_chain =
                u64::from_str_radix(fields[5], 16).map_err(|_| bad("bad chain hash"))?;
            let record = format!("ckpt {id} {seq_tag} {bytes} {file_fnv:016x}");
            chain = fnv1a_chain(chain, record.as_bytes());
            if chain != want_chain {
                return Err(bad("chain hash mismatch (manifest corrupt or reordered)"));
            }
            records.push(ManifestRecord {
                id,
                seq_tag,
                bytes,
                file_fnv,
            });
        }
        Ok((chain, records))
    }

    fn ckpt_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("ckpt-{id}.jspl"))
    }

    /// Persist one snapshot; returns its checkpoint id. `seq_tag` is the
    /// caller's progress marker (typically the snapshot's `next_seq`),
    /// replayed back by [`DurableCheckpointStore::recover_latest`].
    pub fn persist(&mut self, snap: &BaseStateSnapshot, seq_tag: u64) -> Result<u64> {
        let payload = encode_snapshot(snap);
        let id = self.next_id;
        let path = Self::ckpt_path(&self.dir, id);
        let bytes = write_segment_file(&path, &payload, true)?;
        let file_fnv = fnv1a(&payload);
        let record = format!("ckpt {id} {seq_tag} {bytes} {file_fnv:016x}");
        self.chain = fnv1a_chain(self.chain, record.as_bytes());
        let line = format!("{record} {:016x}\n", self.chain);
        let mpath = Self::manifest_path(&self.dir);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&mpath)
            .map_err(|e| io_err("open manifest", &mpath, &e))?;
        f.write_all(line.as_bytes())
            .and_then(|()| f.sync_all())
            .map_err(|e| io_err("append manifest", &mpath, &e))?;
        self.next_id = id + 1;
        Ok(id)
    }

    /// Recover the newest checkpoint under `dir`, verifying the manifest
    /// chain and the checkpoint file's payload hash. `Ok(None)` means the
    /// store is empty; any corruption is an error, never a silent fallback.
    pub fn recover_latest(dir: impl AsRef<Path>) -> Result<Option<(u64, BaseStateSnapshot)>> {
        let dir = dir.as_ref();
        let (_, records) = Self::load_manifest(dir)?;
        let Some(last) = records.last() else {
            return Ok(None);
        };
        let path = Self::ckpt_path(dir, last.id);
        let payload = read_segment_file(&path)?;
        if fnv1a(&payload) != last.file_fnv {
            return Err(JiscError::Internal(format!(
                "checkpoint {}: payload hash disagrees with manifest",
                path.display()
            )));
        }
        let snap = decode_snapshot(&payload)?;
        Ok(Some((last.seq_tag, snap)))
    }

    /// Drop every checkpoint except the newest `keep` (bounded disk), via
    /// atomic manifest rewrite (tmp + rename).
    pub fn prune(&mut self, keep: usize) -> Result<()> {
        let (_, records) = Self::load_manifest(&self.dir)?;
        if records.len() <= keep {
            return Ok(());
        }
        let cut = records.len() - keep;
        let (old, kept) = records.split_at(cut);
        let mut chain = FNV_OFFSET;
        let mut text = String::new();
        for r in kept {
            let record = format!(
                "ckpt {} {} {} {:016x}",
                r.id, r.seq_tag, r.bytes, r.file_fnv
            );
            chain = fnv1a_chain(chain, record.as_bytes());
            text.push_str(&format!("{record} {chain:016x}\n"));
        }
        let mpath = Self::manifest_path(&self.dir);
        let tmp = self.dir.join("MANIFEST.tmp");
        fs::write(&tmp, &text).map_err(|e| io_err("write manifest tmp", &tmp, &e))?;
        fs::rename(&tmp, &mpath).map_err(|e| io_err("rename manifest", &mpath, &e))?;
        self.chain = chain;
        for r in old {
            let _ = fs::remove_file(Self::ckpt_path(&self.dir, r.id));
        }
        Ok(())
    }
}

/// Frame-encode a [`BaseStateSnapshot`] with the same varint/delta
/// primitives segments use.
fn encode_snapshot(snap: &BaseStateSnapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_uv(&mut buf, snap.next_seq);
    put_uv(&mut buf, snap.last_ts);
    put_uv(&mut buf, snap.last_transition_seq);
    put_uv(&mut buf, snap.rings.len() as u64);
    for ring in &snap.rings {
        put_uv(&mut buf, ring.len() as u64);
        let (mut pt, mut ps, mut pk, mut pp) = (0u64, 0u64, 0u64, 0u64);
        for (ts, b) in ring {
            put_delta(&mut buf, &mut pt, *ts);
            put_uv(&mut buf, b.stream.0 as u64);
            put_delta(&mut buf, &mut ps, b.seq);
            put_delta(&mut buf, &mut pk, b.key);
            put_delta(&mut buf, &mut pp, b.payload);
        }
    }
    put_uv(&mut buf, snap.fresh.len() as u64);
    for fresh in &snap.fresh {
        let mut pairs: Vec<(Key, SeqNo)> = fresh.iter().map(|(&k, &s)| (k, s)).collect();
        pairs.sort_unstable();
        put_uv(&mut buf, pairs.len() as u64);
        let (mut pk, mut ps) = (0u64, 0u64);
        for (k, s) in pairs {
            put_delta(&mut buf, &mut pk, k);
            put_delta(&mut buf, &mut ps, s);
        }
    }
    buf
}

fn decode_snapshot(buf: &[u8]) -> Result<BaseStateSnapshot> {
    let mut pos = 0usize;
    let next_seq = get_uv(buf, &mut pos)?;
    let last_ts = get_uv(buf, &mut pos)?;
    let last_transition_seq = get_uv(buf, &mut pos)?;
    let n_rings = get_uv(buf, &mut pos)? as usize;
    let mut rings = Vec::with_capacity(n_rings);
    for _ in 0..n_rings {
        let n = get_uv(buf, &mut pos)? as usize;
        let mut ring = Vec::with_capacity(n);
        let (mut pt, mut ps, mut pk, mut pp) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..n {
            let ts = get_delta(buf, &mut pos, &mut pt)?;
            let stream = get_uv(buf, &mut pos)? as u16;
            let seq = get_delta(buf, &mut pos, &mut ps)?;
            let key = get_delta(buf, &mut pos, &mut pk)?;
            let payload = get_delta(buf, &mut pos, &mut pp)?;
            ring.push((
                ts,
                Arc::new(BaseTuple::new(StreamId(stream), seq, key, payload)),
            ));
        }
        rings.push(ring);
    }
    let n_fresh = get_uv(buf, &mut pos)? as usize;
    let mut fresh = Vec::with_capacity(n_fresh);
    for _ in 0..n_fresh {
        let n = get_uv(buf, &mut pos)? as usize;
        let mut map: FxHashMap<Key, SeqNo> = FxHashMap::default();
        let (mut pk, mut ps) = (0u64, 0u64);
        for _ in 0..n {
            let k = get_delta(buf, &mut pos, &mut pk)?;
            let s = get_delta(buf, &mut pos, &mut ps)?;
            map.insert(k, s);
        }
        fresh.push(map);
    }
    if pos != buf.len() {
        return Err(JiscError::Internal(
            "checkpoint frame: trailing garbage".into(),
        ));
    }
    Ok(BaseStateSnapshot {
        rings,
        fresh,
        next_seq,
        last_ts,
        last_transition_seq,
    })
}

/// A unique scratch directory under the system temp dir, removed on drop.
/// Test/bench helper — production callers name their own directories.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Create `jisc-spill-<pid>-<n>` under the system temp dir.
    pub fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "jisc-{tag}-{}-{}",
            std::process::id(),
            next_instance()
        ));
        fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt(stream: u16, seq: u64, key: Key) -> Tuple {
        Tuple::base(BaseTuple::new(StreamId(stream), seq, key, seq * 3))
    }

    fn tier(dir: &Path) -> ColdTier {
        ColdTier::new(SpillConfig::new(1024, dir)).unwrap()
    }

    #[test]
    fn frame_round_trips_bases_and_joined_trees() {
        let j = Tuple::joined(7, bt(0, 1, 7), Tuple::joined(7, bt(1, 2, 7), bt(2, 9, 7)));
        let entries = vec![(7u64, bt(0, 1, 7)), (7, j.clone()), (8, bt(1, 5, 8))];
        let payload = encode_entries(&entries);
        let back = decode_entries(&payload).unwrap();
        assert_eq!(back.len(), 3);
        for ((k0, t0), (k1, t1)) in entries.iter().zip(&back) {
            assert_eq!(k0, k1);
            assert_eq!(t0.lineage(), t1.lineage());
            assert_eq!(t0.key(), t1.key());
            assert_eq!(t0.min_seq(), t1.min_seq());
            assert_eq!(t0.max_seq(), t1.max_seq());
        }
        // Shared bases deduplicate: the joined tree references the same
        // base rows the standalone entries carry.
        assert!(payload.len() < 120, "columnar payload stays compact");
    }

    #[test]
    fn spill_fault_round_trip_preserves_per_key_order() {
        let dir = ScratchDir::new("tier");
        let mut m = Metrics::new();
        let mut t = tier(dir.path());
        let batch: Vec<(Key, Tuple)> = (0..10u64).map(|s| (s % 3, bt(0, s, s % 3))).collect();
        t.spill_batch(&batch, &mut m);
        assert_eq!(t.entries(), 10);
        assert!(t.contains(0) && t.contains(1) && t.contains(2));
        assert_eq!(t.count(0), 4);

        let got = t.fault_keys(&[0, 2, 99], &mut m);
        let by_key: FxHashMap<Key, Vec<u64>> = got
            .iter()
            .map(|(k, ts)| (*k, ts.iter().map(|t| t.max_seq()).collect()))
            .collect();
        assert_eq!(by_key[&0], vec![0, 3, 6, 9], "oldest-first per key");
        assert_eq!(by_key[&2], vec![2, 5, 8]);
        assert!(!by_key.contains_key(&99));
        assert_eq!(t.entries(), 3, "key 1 stays cold");
        assert_eq!(m.spill_faults, 7);
        assert!(m.spill_fault_reads >= 1);
        assert!(t.fault_latency().count() >= 1);
    }

    #[test]
    fn fully_dead_segment_is_dropped_and_file_unlinked() {
        let dir = ScratchDir::new("drop");
        let mut m = Metrics::new();
        let mut t = tier(dir.path());
        t.spill_batch(&[(1, bt(0, 1, 1)), (2, bt(0, 2, 2))], &mut m);
        let seg_path = {
            let meta = t.segs.values().next().unwrap();
            meta.file.path.clone()
        };
        assert!(seg_path.exists());
        assert_eq!(t.remove_base(1, StreamId(0), 1, &mut m), 1);
        assert_eq!(t.remove_key(2, &mut m), 1);
        assert!(t.is_empty());
        assert_eq!(t.stats().segments, 0);
        assert_eq!(m.spill_segments_dropped, 1);
        assert!(!seg_path.exists(), "O(1) drop unlinks the file");
    }

    #[test]
    fn compaction_rewrites_underoccupied_segments_and_keeps_order() {
        let dir = ScratchDir::new("compact");
        let mut m = Metrics::new();
        let mut t = ColdTier::new(SpillConfig {
            compact_live_frac: 0.6,
            ..SpillConfig::new(1024, dir.path())
        })
        .unwrap();
        // 8 entries, 2 keys; kill 5 of key 1's entries -> live frac 3/8.
        let batch: Vec<(Key, Tuple)> = (0..8u64)
            .map(|s| ((s % 2) + 1, bt(0, s, (s % 2) + 1)))
            .collect();
        t.spill_batch(&batch, &mut m);
        for seq in [1u64, 3, 5, 7] {
            assert_eq!(t.remove_base(2, StreamId(0), seq, &mut m), 1);
        }
        assert_eq!(t.remove_base(1, StreamId(0), 0, &mut m), 1);
        assert!(m.spill_compactions >= 1, "live fraction crossed threshold");
        // Key 1's survivors fault back in order from the rewritten segment.
        let got = t.fault_keys(&[1], &mut m);
        let seqs: Vec<u64> = got[0].1.iter().map(|t| t.max_seq()).collect();
        assert_eq!(seqs, vec![2, 4, 6]);
        assert!(t.is_empty());
    }

    #[test]
    fn clones_share_sealed_files_and_diverge_independently() {
        let dir = ScratchDir::new("clone");
        let mut m = Metrics::new();
        let mut a = tier(dir.path());
        a.spill_batch(&[(1, bt(0, 1, 1)), (2, bt(0, 2, 2))], &mut m);
        let mut b = a.clone();
        // A faults key 1; B still sees it cold and faults independently.
        let got_a = a.fault_keys(&[1], &mut m);
        assert_eq!(got_a[0].1.len(), 1);
        assert!(b.contains(1));
        let got_b = b.fault_keys(&[1, 2], &mut m);
        assert_eq!(got_b.len(), 2);
        assert!(b.is_empty());
        assert!(a.contains(2));
        let got_a2 = a.fault_keys(&[2], &mut m);
        assert_eq!(got_a2[0].1[0].max_seq(), 2);
    }

    #[test]
    fn durable_checkpoints_survive_reopen_and_verify_chain() {
        let dir = ScratchDir::new("ckpt");
        let snap = BaseStateSnapshot {
            rings: vec![
                vec![
                    (5, Arc::new(BaseTuple::new(StreamId(0), 1, 42, 7))),
                    (6, Arc::new(BaseTuple::new(StreamId(0), 3, 43, 8))),
                ],
                vec![(6, Arc::new(BaseTuple::new(StreamId(1), 2, 42, 9)))],
            ],
            fresh: vec![
                [(42u64, 1u64), (43, 3)].into_iter().collect(),
                [(42u64, 2u64)].into_iter().collect(),
            ],
            next_seq: 4,
            last_ts: 6,
            last_transition_seq: 0,
        };
        let mut store = DurableCheckpointStore::open(dir.path()).unwrap();
        store.persist(&snap, 4).unwrap();
        let mut snap2 = snap.clone();
        snap2.next_seq = 9;
        store.persist(&snap2, 9).unwrap();

        // "Process restart": recover from the directory alone.
        let (tag, got) = DurableCheckpointStore::recover_latest(dir.path())
            .unwrap()
            .expect("checkpoint present");
        assert_eq!(tag, 9);
        assert_eq!(got.next_seq, 9);
        assert_eq!(got.last_ts, 6);
        assert_eq!(got.window_tuples(), 3);
        assert_eq!(got.rings[0][1].1.key, 43);
        assert_eq!(got.fresh[1][&42], 2);

        // Reopening appends to the verified chain.
        let mut reopened = DurableCheckpointStore::open(dir.path()).unwrap();
        let id = reopened.persist(&snap, 4).unwrap();
        assert_eq!(id, 2);
        reopened.prune(1).unwrap();
        let (tag, _) = DurableCheckpointStore::recover_latest(dir.path())
            .unwrap()
            .expect("pruned store keeps newest");
        assert_eq!(tag, 4);
    }

    #[test]
    fn flipped_byte_in_checkpoint_or_manifest_is_rejected() {
        let dir = ScratchDir::new("corrupt");
        let snap = BaseStateSnapshot {
            rings: vec![vec![(1, Arc::new(BaseTuple::new(StreamId(0), 1, 5, 0)))]],
            fresh: vec![[(5u64, 1u64)].into_iter().collect()],
            next_seq: 2,
            last_ts: 1,
            last_transition_seq: 0,
        };
        let mut store = DurableCheckpointStore::open(dir.path()).unwrap();
        store.persist(&snap, 2).unwrap();

        // Flip one byte mid-file: recovery must fail, not return junk.
        let ckpt = DurableCheckpointStore::ckpt_path(dir.path(), 0);
        let mut bytes = fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&ckpt, &bytes).unwrap();
        assert!(DurableCheckpointStore::recover_latest(dir.path()).is_err());
        bytes[mid] ^= 0x40;
        fs::write(&ckpt, &bytes).unwrap();
        assert!(DurableCheckpointStore::recover_latest(dir.path()).is_ok());

        // Flip one byte in the manifest: the chain breaks.
        let mpath = DurableCheckpointStore::manifest_path(dir.path());
        let mut mbytes = fs::read(&mpath).unwrap();
        let at = mbytes.len() / 3;
        mbytes[at] = if mbytes[at] == b'7' { b'8' } else { b'7' };
        fs::write(&mpath, &mbytes).unwrap();
        assert!(DurableCheckpointStore::open(dir.path()).is_err());
        assert!(DurableCheckpointStore::recover_latest(dir.path()).is_err());
    }
}
