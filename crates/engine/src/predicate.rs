//! Join predicates for nested-loops (theta) joins.
//!
//! Equi-joins are evaluated by hashing and never consult a [`Predicate`];
//! nested-loops joins evaluate a predicate for every pair of candidate
//! tuples, exactly as the paper's general theta joins do (§2.1).

use jisc_common::Key;
use serde::{Deserialize, Serialize};

/// A theta predicate over the join-attribute values of two tuples.
///
/// The paper's workloads join on a single shared attribute, so predicates
/// here are functions of the two key values. `KeyEq` gives a nested-loops
/// join with equi-join semantics (used in Figure 10b, where the Moving State
/// strategy must rebuild states with nested loops); the others exercise
/// genuinely non-hashable conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// `l.key == r.key` — equi semantics, nested-loops evaluation.
    KeyEq,
    /// `l.key <= r.key`.
    KeyLeq,
    /// `|l.key - r.key| <= d` — a band join.
    BandWithin(u64),
    /// Always true (cross product); useful in stress tests only.
    Always,
}

impl Predicate {
    /// Evaluate the predicate on two key values, left and right.
    #[inline]
    pub fn eval(&self, l: Key, r: Key) -> bool {
        match *self {
            Predicate::KeyEq => l == r,
            Predicate::KeyLeq => l <= r,
            Predicate::BandWithin(d) => l.abs_diff(r) <= d,
            Predicate::Always => true,
        }
    }

    /// True if the predicate is symmetric: `eval(a, b) == eval(b, a)`.
    pub fn is_symmetric(&self) -> bool {
        matches!(
            self,
            Predicate::KeyEq | Predicate::BandWithin(_) | Predicate::Always
        )
    }

    /// True if the join result is insensitive to the order in which a set of
    /// streams is joined (required for plan transitions to be meaningful).
    ///
    /// Equality and band predicates over a single shared attribute are
    /// associative in this sense; `KeyLeq` is not in general.
    pub fn is_reorderable(&self) -> bool {
        matches!(self, Predicate::KeyEq | Predicate::Always)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_eq() {
        assert!(Predicate::KeyEq.eval(3, 3));
        assert!(!Predicate::KeyEq.eval(3, 4));
    }

    #[test]
    fn key_leq_is_asymmetric() {
        assert!(Predicate::KeyLeq.eval(3, 4));
        assert!(!Predicate::KeyLeq.eval(4, 3));
        assert!(!Predicate::KeyLeq.is_symmetric());
    }

    #[test]
    fn band_within() {
        let p = Predicate::BandWithin(2);
        assert!(p.eval(5, 7));
        assert!(p.eval(7, 5));
        assert!(!p.eval(5, 8));
        assert!(p.is_symmetric());
    }

    #[test]
    fn reorderability() {
        assert!(Predicate::KeyEq.is_reorderable());
        assert!(!Predicate::KeyLeq.is_reorderable());
        assert!(!Predicate::BandWithin(1).is_reorderable());
    }
}
