//! Lightweight base-state checkpoints for crash recovery.
//!
//! A [`BaseStateSnapshot`] captures only the *base* state of a pipeline:
//! the per-stream window rings, the freshness maps of §4.4, and the
//! sequence/timestamp counters. Operator (join) states are deliberately
//! **not** captured — they are derived data, and the whole point of the
//! recovery path in `jisc-core` is that a restarted pipeline can treat its
//! empty operator states as *incomplete* (Definition 1) and rebuild them
//! from the restored scan states, either lazily with the JISC completion
//! procedures or eagerly with the Moving State rebuild. This keeps
//! checkpoints `O(window)` instead of `O(window^height)`.
//!
//! Tuples are shared via [`Arc`], so snapshotting clones ring layout and
//! bumps refcounts rather than copying payloads.

use std::sync::Arc;

use jisc_common::{BaseTuple, FxHashMap, Key, SeqNo};

/// A point-in-time copy of a pipeline's base state (windows, freshness,
/// clocks). Produced by [`Pipeline::snapshot_base_state`] and consumed by
/// the recovery layer in `jisc-core`.
///
/// [`Pipeline::snapshot_base_state`]: crate::Pipeline::snapshot_base_state
#[derive(Debug, Clone)]
pub struct BaseStateSnapshot {
    /// Per-stream window contents, oldest first: `(arrival ts, tuple)`.
    pub rings: Vec<Vec<(u64, Arc<BaseTuple>)>>,
    /// Per-stream, per-key sequence number of the most recent arrival.
    pub fresh: Vec<FxHashMap<Key, SeqNo>>,
    /// Sequence number the next arrival would have received.
    pub next_seq: SeqNo,
    /// Most recent arrival timestamp.
    pub last_ts: u64,
    /// Sequence number recorded at the most recent plan transition.
    pub last_transition_seq: SeqNo,
}

impl BaseStateSnapshot {
    /// Total tuples captured across all window rings.
    pub fn window_tuples(&self) -> usize {
        self.rings.iter().map(Vec::len).sum()
    }
}
