//! Lightweight base-state checkpoints for crash recovery.
//!
//! A [`BaseStateSnapshot`] captures only the *base* state of a pipeline:
//! the per-stream window rings, the freshness maps of §4.4, and the
//! sequence/timestamp counters. Operator (join) states are deliberately
//! **not** captured — they are derived data, and the whole point of the
//! recovery path in `jisc-core` is that a restarted pipeline can treat its
//! empty operator states as *incomplete* (Definition 1) and rebuild them
//! from the restored scan states, either lazily with the JISC completion
//! procedures or eagerly with the Moving State rebuild. This keeps
//! checkpoints `O(window)` instead of `O(window^height)`.
//!
//! Tuples are shared via [`Arc`], so snapshotting clones ring layout and
//! bumps refcounts rather than copying payloads.

use std::sync::Arc;

use jisc_common::{BaseTuple, FxHashMap, FxHashSet, Key, KeyRange, SeqNo};

/// A point-in-time copy of a pipeline's base state (windows, freshness,
/// clocks). Produced by [`Pipeline::snapshot_base_state`] and consumed by
/// the recovery layer in `jisc-core`.
///
/// [`Pipeline::snapshot_base_state`]: crate::Pipeline::snapshot_base_state
#[derive(Debug, Clone)]
pub struct BaseStateSnapshot {
    /// Per-stream window contents, oldest first: `(arrival ts, tuple)`.
    pub rings: Vec<Vec<(u64, Arc<BaseTuple>)>>,
    /// Per-stream, per-key sequence number of the most recent arrival.
    pub fresh: Vec<FxHashMap<Key, SeqNo>>,
    /// Sequence number the next arrival would have received.
    pub next_seq: SeqNo,
    /// Most recent arrival timestamp.
    pub last_ts: u64,
    /// Sequence number recorded at the most recent plan transition.
    pub last_transition_seq: SeqNo,
}

impl BaseStateSnapshot {
    /// Total tuples captured across all window rings.
    pub fn window_tuples(&self) -> usize {
        self.rings.iter().map(Vec::len).sum()
    }
}

/// The base-state slice of an elastic range handover: every window-ring
/// entry and freshness entry of the keys whose hash lies in the moved
/// ranges, extracted from the source shard's pipeline in ring (arrival)
/// order. Like a [`BaseStateSnapshot`] this deliberately omits derived
/// (join) states — the target installs the base slice and treats the moved
/// keys as completion debt, so repartitioning rides the same just-in-time
/// machinery as crash recovery. Produced by
/// [`Pipeline::extract_base_range`], consumed by
/// [`Pipeline::absorb_base_range`].
///
/// [`Pipeline::extract_base_range`]: crate::Pipeline::extract_base_range
/// [`Pipeline::absorb_base_range`]: crate::Pipeline::absorb_base_range
#[derive(Debug, Clone)]
pub struct BaseRangeExport {
    /// The hash ranges this export covers.
    pub ranges: Vec<KeyRange>,
    /// Per-stream moved window entries, oldest first: `(arrival ts, tuple)`.
    pub rings: Vec<Vec<(u64, Arc<BaseTuple>)>>,
    /// Per-stream moved freshness entries, sorted by key for determinism.
    pub fresh: Vec<Vec<(Key, SeqNo)>>,
    /// Every distinct key observed anywhere in the moved slice (base or,
    /// once the rescale layer widens it, derived state).
    pub keys: FxHashSet<Key>,
}

impl BaseRangeExport {
    /// Total tuples moved across all window rings.
    pub fn window_tuples(&self) -> usize {
        self.rings.iter().map(Vec::len).sum()
    }
}
