//! Query output sink: the root operator's emission log.

use jisc_common::{FxHashMap, Key, Lineage, Tuple};

/// Collects everything the plan root emits.
///
/// Output is an append-only log, matching the paper's stream semantics: a
/// result is correct at emission time and is never retracted by later window
/// slides. (Set-difference suppressions that reach the root are counted in
/// [`OutputSink::retractions`] for observability but do not rewrite the log.)
///
/// The sink also supports *latency arming*: a migration strategy arms the
/// sink when a transition is triggered, and the sink records how much work
/// (an externally supplied monotonic counter) elapsed until the next
/// emission — the paper's "output latency" measure (§6.3).
#[derive(Debug, Clone, Default)]
pub struct OutputSink {
    /// Emitted result tuples, in emission order.
    pub log: Vec<Tuple>,
    /// Aggregate updates: `(group key or None for global, running count)`.
    pub agg_log: Vec<(Option<Key>, u64)>,
    /// Root-level suppressions observed (set-difference plans).
    pub retractions: u64,
    armed_at: Option<u64>,
    /// Work elapsed between each arming and the next emission.
    pub latency_marks: Vec<u64>,
}

impl OutputSink {
    /// Fresh, empty sink.
    pub fn new() -> Self {
        OutputSink::default()
    }

    /// Record an emission; `work_now` is the current monotonic work counter.
    pub fn emit(&mut self, t: Tuple, work_now: u64) {
        if let Some(at) = self.armed_at.take() {
            self.latency_marks.push(work_now.saturating_sub(at));
        }
        self.log.push(t);
    }

    /// Arm the latency marker at the current work counter (called when a
    /// plan transition is triggered).
    pub fn arm_latency(&mut self, work_now: u64) {
        self.armed_at = Some(work_now);
    }

    /// True if a latency measurement is pending (armed but not yet emitted).
    pub fn latency_pending(&self) -> bool {
        self.armed_at.is_some()
    }

    /// Number of emitted result tuples.
    pub fn count(&self) -> usize {
        self.log.len()
    }

    /// Multiset of output lineages — the canonical form used to compare two
    /// executions for equality (Theorems 1–3).
    pub fn lineage_multiset(&self) -> FxHashMap<Lineage, usize> {
        let mut m: FxHashMap<Lineage, usize> = FxHashMap::default();
        for t in &self.log {
            *m.entry(t.lineage()).or_default() += 1;
        }
        m
    }

    /// True if no output lineage appears more than once (duplicate-freedom,
    /// Theorem 3).
    pub fn is_duplicate_free(&self) -> bool {
        self.lineage_multiset().values().all(|&c| c == 1)
    }

    /// Clear the log (between experiment phases), keeping arming state.
    pub fn clear_log(&mut self) {
        self.log.clear();
        self.agg_log.clear();
    }

    /// Merge per-shard sinks into one deterministic sink.
    ///
    /// Join logs are concatenated and sorted by lineage, which is a total
    /// order independent of shard interleaving, so the merged log is
    /// byte-identical across runs and comparable (as a multiset) to a serial
    /// execution. Aggregate logs are concatenated in shard order — they are
    /// per-shard running sequences, not a global one. Latency marks are
    /// pooled and sorted; retraction counts are summed.
    pub fn merged(sinks: impl IntoIterator<Item = OutputSink>) -> OutputSink {
        let mut out = OutputSink::new();
        for s in sinks {
            out.log.extend(s.log);
            out.agg_log.extend(s.agg_log);
            out.retractions += s.retractions;
            out.latency_marks.extend(s.latency_marks);
        }
        out.log.sort_by_cached_key(|t| t.lineage());
        out.latency_marks.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jisc_common::{BaseTuple, StreamId};

    fn bt(stream: u16, seq: u64, key: Key) -> Tuple {
        Tuple::base(BaseTuple::new(StreamId(stream), seq, key, 0))
    }

    #[test]
    fn emit_logs_and_counts() {
        let mut s = OutputSink::new();
        s.emit(bt(0, 1, 5), 10);
        s.emit(bt(0, 2, 5), 20);
        assert_eq!(s.count(), 2);
        assert!(s.is_duplicate_free());
    }

    #[test]
    fn latency_marks_measure_to_first_emission() {
        let mut s = OutputSink::new();
        s.arm_latency(100);
        assert!(s.latency_pending());
        s.emit(bt(0, 1, 5), 175);
        s.emit(bt(0, 2, 5), 500); // second emission does not re-mark
        assert_eq!(s.latency_marks, vec![75]);
        assert!(!s.latency_pending());
        s.arm_latency(600);
        s.emit(bt(0, 3, 5), 630);
        assert_eq!(s.latency_marks, vec![75, 30]);
    }

    #[test]
    fn duplicate_detection() {
        let mut s = OutputSink::new();
        s.emit(bt(0, 1, 5), 0);
        s.emit(bt(0, 1, 5), 0);
        assert!(!s.is_duplicate_free());
        assert_eq!(s.lineage_multiset().values().copied().max(), Some(2));
    }
}
