//! Declarative plan specifications and the stream catalog.
//!
//! A [`PlanSpec`] is the user-facing description of a query evaluation plan
//! (QEP): a binary tree of joins / set-differences over named streams, with
//! an optional aggregate on top (§4.7). Specs are cheap values: migration
//! strategies diff an old spec against a new one, and the workload crate
//! builds transition scenarios by permuting spec leaves.

use jisc_common::{FxHashMap, JiscError, Result, StreamId};
use serde::{Deserialize, Serialize};

use crate::predicate::Predicate;

/// Sliding-window specification for one stream.
///
/// The paper's evaluation uses count-based windows (§6: "the window size
/// corresponding to each stream is 10,000 tuples"); time-based windows are
/// the natural extension every DSMS also offers and migrate identically
/// (expiry is still a bottom-up state-clearing pass, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowSpec {
    /// Keep the last `n` tuples (n > 0).
    Count(usize),
    /// Keep tuples younger than `d` timestamp ticks (d > 0); arrivals carry
    /// monotonic timestamps via `Pipeline::push_at`.
    Time(u64),
}

impl WindowSpec {
    /// A loose capacity hint (the count, or the duration in ticks).
    pub fn hint(&self) -> usize {
        match *self {
            WindowSpec::Count(n) => n,
            WindowSpec::Time(d) => d as usize,
        }
    }
}

/// Definition of one input stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamDef {
    /// Unique stream name (e.g. `"R"`).
    pub name: String,
    /// Sliding-window specification.
    pub window: WindowSpec,
}

impl StreamDef {
    /// Count-based window of `window` tuples (the paper's setup).
    pub fn new(name: impl Into<String>, window: usize) -> Self {
        StreamDef {
            name: name.into(),
            window: WindowSpec::Count(window),
        }
    }

    /// Time-based window of `ticks` timestamp units.
    pub fn timed(name: impl Into<String>, ticks: u64) -> Self {
        StreamDef {
            name: name.into(),
            window: WindowSpec::Time(ticks),
        }
    }
}

/// The set of streams a query ranges over, with their window sizes.
///
/// Stream ids are assigned by position and remain stable across every plan
/// of the query, which is what lets migration match states between plans.
#[derive(Debug, Clone)]
pub struct Catalog {
    defs: Vec<StreamDef>,
    index: FxHashMap<String, StreamId>,
}

impl Catalog {
    /// Build a catalog; stream names must be unique, windows non-zero, and
    /// at most 64 streams are supported (stream sets are u64 bitmasks).
    pub fn new(defs: Vec<StreamDef>) -> Result<Self> {
        if defs.is_empty() {
            return Err(JiscError::InvalidConfig(
                "catalog needs at least one stream".into(),
            ));
        }
        if defs.len() > 64 {
            return Err(JiscError::InvalidConfig(
                "at most 64 streams supported".into(),
            ));
        }
        let mut index = FxHashMap::default();
        for (i, d) in defs.iter().enumerate() {
            let zero = match d.window {
                WindowSpec::Count(n) => n == 0,
                WindowSpec::Time(t) => t == 0,
            };
            if zero {
                return Err(JiscError::InvalidConfig(format!(
                    "stream {} has zero window",
                    d.name
                )));
            }
            if index.insert(d.name.clone(), StreamId(i as u16)).is_some() {
                return Err(JiscError::InvalidConfig(format!(
                    "duplicate stream {}",
                    d.name
                )));
            }
        }
        Ok(Catalog { defs, index })
    }

    /// Catalog with the same window size for every stream.
    pub fn uniform(names: &[&str], window: usize) -> Result<Self> {
        Catalog::new(names.iter().map(|n| StreamDef::new(*n, window)).collect())
    }

    /// Id of a stream by name.
    pub fn id(&self, name: &str) -> Result<StreamId> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| JiscError::UnknownStream(name.into()))
    }

    /// Name of a stream by id.
    pub fn name(&self, id: StreamId) -> &str {
        &self.defs[id.0 as usize].name
    }

    /// Window size hint of a stream (count, or time-window duration).
    pub fn window(&self, id: StreamId) -> usize {
        self.defs[id.0 as usize].window.hint()
    }

    /// Full window specification of a stream.
    pub fn window_spec(&self, id: StreamId) -> WindowSpec {
        self.defs[id.0 as usize].window
    }

    /// True if every stream uses a count-based window.
    pub fn all_count_windows(&self) -> bool {
        self.defs
            .iter()
            .all(|d| matches!(d.window, WindowSpec::Count(_)))
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if the catalog has no streams (never true for a valid catalog).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// All stream ids.
    pub fn ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        (0..self.defs.len()).map(|i| StreamId(i as u16))
    }
}

/// How a join in a spec is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinStyle {
    /// Symmetric hash join on the shared attribute (§2.1).
    Hash,
    /// Nested-loops join with the given theta predicate.
    Nlj(Predicate),
}

/// Aggregate placed above the plan root (§4.7: unary, migration-proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggKind {
    /// Running count of all output tuples.
    Count,
    /// Running count per join-attribute value.
    GroupCount,
}

/// One node of a plan specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecNode {
    /// Leaf: scan of a named stream.
    Scan(String),
    /// Binary join of two subplans.
    Join {
        style: JoinStyle,
        left: Box<SpecNode>,
        right: Box<SpecNode>,
    },
    /// Set difference: `left − right` (§4.7).
    SetDiff {
        left: Box<SpecNode>,
        right: Box<SpecNode>,
    },
}

impl SpecNode {
    fn leaves_into<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SpecNode::Scan(n) => out.push(n),
            SpecNode::Join { left, right, .. } | SpecNode::SetDiff { left, right } => {
                left.leaves_into(out);
                right.leaves_into(out);
            }
        }
    }

    fn swap_in_place(&mut self, a: &str, b: &str) {
        match self {
            SpecNode::Scan(n) => {
                if n == a {
                    *n = b.to_string();
                } else if n == b {
                    *n = a.to_string();
                }
            }
            SpecNode::Join { left, right, .. } | SpecNode::SetDiff { left, right } => {
                left.swap_in_place(a, b);
                right.swap_in_place(a, b);
            }
        }
    }
}

/// A full query-evaluation-plan specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Root of the operator tree.
    pub root: SpecNode,
    /// Optional aggregate above the root.
    pub aggregate: Option<AggKind>,
}

impl PlanSpec {
    /// Wrap a root node.
    pub fn new(root: SpecNode) -> Self {
        PlanSpec {
            root,
            aggregate: None,
        }
    }

    /// Left-deep chain: `((s0 ⋈ s1) ⋈ s2) ⋈ …` (Figure 1).
    ///
    /// Requires at least two streams.
    pub fn left_deep(streams: &[&str], style: JoinStyle) -> Self {
        assert!(
            streams.len() >= 2,
            "left-deep plan needs at least two streams"
        );
        let mut node = SpecNode::Scan(streams[0].into());
        for s in &streams[1..] {
            node = SpecNode::Join {
                style,
                left: Box::new(node),
                right: Box::new(SpecNode::Scan((*s).into())),
            };
        }
        PlanSpec::new(node)
    }

    /// Balanced bushy tree over the given streams.
    pub fn bushy(streams: &[&str], style: JoinStyle) -> Self {
        assert!(streams.len() >= 2, "bushy plan needs at least two streams");
        fn build(streams: &[&str], style: JoinStyle) -> SpecNode {
            if streams.len() == 1 {
                return SpecNode::Scan(streams[0].into());
            }
            let mid = streams.len() / 2;
            SpecNode::Join {
                style,
                left: Box::new(build(&streams[..mid], style)),
                right: Box::new(build(&streams[mid..], style)),
            }
        }
        PlanSpec::new(build(streams, style))
    }

    /// Left-deep set-difference chain: `((s0 − s1) − s2) − …` (§4.7).
    pub fn set_diff_chain(streams: &[&str]) -> Self {
        assert!(
            streams.len() >= 2,
            "set-difference chain needs at least two streams"
        );
        let mut node = SpecNode::Scan(streams[0].into());
        for s in &streams[1..] {
            node = SpecNode::SetDiff {
                left: Box::new(node),
                right: Box::new(SpecNode::Scan((*s).into())),
            };
        }
        PlanSpec::new(node)
    }

    /// Add an aggregate above the root (§4.7).
    pub fn with_aggregate(mut self, agg: AggKind) -> Self {
        self.aggregate = Some(agg);
        self
    }

    /// Stream names at the leaves, left-to-right.
    pub fn leaves(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.root.leaves_into(&mut out);
        out
    }

    /// A new spec with the positions of streams `a` and `b` exchanged —
    /// the paper's pairwise join exchange (§5.2).
    pub fn swap_streams(&self, a: &str, b: &str) -> Self {
        let mut spec = self.clone();
        spec.root.swap_in_place(a, b);
        spec
    }

    /// Validate against a catalog: every leaf is a known stream, no stream
    /// appears twice, and binary structure is sound by construction.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        let leaves = self.leaves();
        if leaves.len() < 2 {
            return Err(JiscError::InvalidPlan(
                "plan must range over at least two streams".into(),
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for l in &leaves {
            catalog.id(l)?;
            if !seen.insert(*l) {
                return Err(JiscError::InvalidPlan(format!("stream {l} appears twice")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_rejects_bad_configs() {
        assert!(Catalog::new(vec![]).is_err());
        assert!(Catalog::new(vec![StreamDef::new("R", 0)]).is_err());
        assert!(Catalog::new(vec![StreamDef::new("R", 1), StreamDef::new("R", 1)]).is_err());
        let many: Vec<StreamDef> = (0..65)
            .map(|i| StreamDef::new(format!("s{i}"), 1))
            .collect();
        assert!(Catalog::new(many).is_err());
    }

    #[test]
    fn catalog_lookup() {
        let c = Catalog::uniform(&["R", "S"], 10).unwrap();
        assert_eq!(c.id("R").unwrap(), StreamId(0));
        assert_eq!(c.id("S").unwrap(), StreamId(1));
        assert!(c.id("T").is_err());
        assert_eq!(c.name(StreamId(1)), "S");
        assert_eq!(c.window(StreamId(0)), 10);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn left_deep_leaves_in_order() {
        let p = PlanSpec::left_deep(&["R", "S", "T", "U"], JoinStyle::Hash);
        assert_eq!(p.leaves(), vec!["R", "S", "T", "U"]);
    }

    #[test]
    fn bushy_covers_all_leaves() {
        let p = PlanSpec::bushy(&["A", "B", "C", "D", "E"], JoinStyle::Hash);
        assert_eq!(p.leaves(), vec!["A", "B", "C", "D", "E"]);
    }

    #[test]
    fn swap_streams_exchanges_positions() {
        let p = PlanSpec::left_deep(&["R", "S", "T", "U"], JoinStyle::Hash);
        let q = p.swap_streams("S", "U");
        assert_eq!(q.leaves(), vec!["R", "U", "T", "S"]);
        // swapping back restores the original
        assert_eq!(q.swap_streams("S", "U"), p);
    }

    #[test]
    fn validation_catches_unknown_and_duplicate_streams() {
        let c = Catalog::uniform(&["R", "S", "T"], 5).unwrap();
        let ok = PlanSpec::left_deep(&["R", "S", "T"], JoinStyle::Hash);
        assert!(ok.validate(&c).is_ok());
        let unknown = PlanSpec::left_deep(&["R", "X"], JoinStyle::Hash);
        assert!(unknown.validate(&c).is_err());
        let dup = PlanSpec::left_deep(&["R", "R"], JoinStyle::Hash);
        assert!(dup.validate(&c).is_err());
    }

    #[test]
    fn set_diff_chain_shape() {
        let p = PlanSpec::set_diff_chain(&["A", "B", "C"]);
        assert_eq!(p.leaves(), vec!["A", "B", "C"]);
        match &p.root {
            SpecNode::SetDiff { left, right } => {
                assert!(matches!(**right, SpecNode::Scan(ref n) if n == "C"));
                assert!(matches!(**left, SpecNode::SetDiff { .. }));
            }
            _ => panic!("expected set-diff root"),
        }
    }
}
