//! Default (plain pipelined) operator semantics.
//!
//! This is the paper's §2.1 execution model with no migration awareness:
//! symmetric hash joins probe the opposite child's state and materialize
//! results into their own state; window-expiry removals propagate bottom-up
//! while matches are found; set-difference maintains its visible-outer state
//! incrementally; aggregates fold the root's results.
//!
//! The functions are public so strategy semantics in `jisc-core` can fall
//! back to the default behaviour for the cases they do not override.

use jisc_common::Tuple;

use crate::pipeline::{Pipeline, Semantics};
use crate::plan::{NodeId, OpKind, Payload, QueueItem};
use crate::spec::AggKind;

/// Plain pipelined execution (no migration logic).
#[derive(Debug, Default)]
pub struct DefaultSemantics;

impl Semantics for DefaultSemantics {
    fn process(&mut self, p: &mut Pipeline, node: NodeId, item: QueueItem) {
        default_process(p, node, item);
    }

    fn bulk_retract_ok(&self, _p: &Pipeline) -> bool {
        true // these ARE the default semantics
    }
}

/// Dispatch one queue item under default semantics.
pub fn default_process(p: &mut Pipeline, node: NodeId, item: QueueItem) {
    let op = p.plan().node(node).op.clone();
    match op {
        OpKind::Scan(_) => process_scan(p, node, item),
        OpKind::HashJoin | OpKind::NljJoin(_) => process_join(p, node, item),
        OpKind::SetDiff => process_set_diff(p, node, item),
        OpKind::Aggregate(kind) => process_aggregate(p, node, kind, item),
    }
}

/// Scan: maintain the window state and forward everything upward.
pub fn process_scan(p: &mut Pipeline, node: NodeId, item: QueueItem) {
    match item.payload {
        Payload::Insert { tuple, fresh } => {
            p.state_insert(node, tuple.clone());
            p.forward_or_emit(node, Payload::Insert { tuple, fresh });
        }
        Payload::Remove {
            stream,
            seq,
            key,
            fresh,
        } => {
            p.state_remove_containing(node, stream, seq, key);
            // The expired tuple was in this window by construction; the
            // slide must always reach the operators above (§2.1).
            p.forward_or_emit(
                node,
                Payload::Remove {
                    stream,
                    seq,
                    key,
                    fresh,
                },
            );
        }
        Payload::RemoveEntry { .. } | Payload::SuppressKey { .. } => {
            // Scans receive no entry-level or key-level suppressions.
        }
    }
}

/// Join (hash or nested loops): probe the opposite child, materialize, forward.
pub fn process_join(p: &mut Pipeline, node: NodeId, item: QueueItem) {
    match item.payload {
        Payload::Insert { tuple, fresh } => {
            probe_and_emit_joins(p, node, item.from, tuple, fresh);
        }
        Payload::Remove {
            stream,
            seq,
            key,
            fresh,
        } => {
            let removed = p.state_remove_containing(node, stream, seq, key);
            // §2.1: propagate while matches are found. §4.2: a state that
            // still needs completion for this key cannot prove absence, so
            // the clearing-tuple continues upward regardless of a match.
            if removed > 0 || p.plan().node(node).state.needs_completion(key) {
                p.forward_or_emit(
                    node,
                    Payload::Remove {
                        stream,
                        seq,
                        key,
                        fresh,
                    },
                );
            }
        }
        Payload::RemoveEntry {
            lineage,
            key,
            fresh,
        } => {
            let removed = p.state_remove_superset(node, &lineage, key);
            if removed > 0 || p.plan().node(node).state.needs_completion(key) {
                p.forward_or_emit(
                    node,
                    Payload::RemoveEntry {
                        lineage,
                        key,
                        fresh,
                    },
                );
            }
        }
        Payload::SuppressKey { key, fresh } => {
            // A set-difference below suppressed every visible tuple with
            // this key; any join result built from one of them must go.
            let removed = p.state_remove_key(node, key);
            if removed > 0 || p.plan().node(node).state.needs_completion(key) {
                p.forward_or_emit(node, Payload::SuppressKey { key, fresh });
            }
        }
    }
}

/// Probe the state of the child opposite to the item's origin, appending
/// the matching entries (Arc-cloned) to `out`.
pub fn probe_opposite_into(
    p: &mut Pipeline,
    node: NodeId,
    from: Option<NodeId>,
    tuple: &Tuple,
    out: &mut Vec<Tuple>,
) {
    let from = from.expect("join items always come from a child");
    let opp = p
        .plan()
        .sibling(node, from)
        .expect("binary node has a sibling child");
    match p.plan().node(node).op {
        OpKind::NljJoin(pred) => {
            // If the tuple came from the left child, stored entries sit on
            // the predicate's right side.
            let from_left = p.plan().is_left_child(node, from);
            p.scan_theta_state_into(opp, pred, tuple.key(), !from_left, out);
        }
        _ => p.lookup_state_into(opp, tuple.key(), out),
    }
}

/// Probe the state of the child opposite to the item's origin and return the
/// matching entries (Arc-cloned). Allocates; prefer
/// [`probe_and_emit_joins`] (or [`probe_opposite_into`] with a recycled
/// buffer) on per-arrival paths.
pub fn probe_opposite(
    p: &mut Pipeline,
    node: NodeId,
    from: Option<NodeId>,
    tuple: &Tuple,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    probe_opposite_into(p, node, from, tuple, &mut out);
    out
}

/// Build join results in child order, materialize them into the node's own
/// state, and forward each upward (emitting at the root). Drains `matches`.
pub fn emit_joins(
    p: &mut Pipeline,
    node: NodeId,
    from: Option<NodeId>,
    tuple: Tuple,
    matches: &mut Vec<Tuple>,
    fresh: bool,
) {
    let from = from.expect("join items always come from a child");
    let from_left = p.plan().is_left_child(node, from);
    for m in matches.drain(..) {
        let (l, r) = if from_left {
            (tuple.clone(), m)
        } else {
            (m, tuple.clone())
        };
        let key = l.key();
        let joined = Tuple::joined(key, l, r);
        p.state_insert(node, joined.clone());
        p.forward_or_emit(
            node,
            Payload::Insert {
                tuple: joined,
                fresh,
            },
        );
    }
}

/// The join-insert hot path: probe the opposite state into the pipeline's
/// recycled scratch buffer, then materialize and forward each result —
/// no per-arrival allocation once the buffer has warmed up.
pub fn probe_and_emit_joins(
    p: &mut Pipeline,
    node: NodeId,
    from: Option<NodeId>,
    tuple: Tuple,
    fresh: bool,
) {
    let mut matches = p.take_probe_scratch();
    probe_opposite_into(p, node, from, &tuple, &mut matches);
    emit_joins(p, node, from, tuple, &mut matches, fresh);
    p.recycle_probe_scratch(matches);
}

/// Set difference (`outer − inner`): state = currently visible outer tuples.
pub fn process_set_diff(p: &mut Pipeline, node: NodeId, item: QueueItem) {
    let from = item
        .from
        .expect("set-difference items always come from a child");
    let from_left = p.plan().is_left_child(node, from);
    let inner = p
        .plan()
        .node(node)
        .right
        .expect("set-diff has a right child");
    let outer = p.plan().node(node).left.expect("set-diff has a left child");
    match item.payload {
        Payload::Insert { tuple, fresh } => {
            if from_left {
                // Outer arrival: visible iff no inner match (§4.7).
                if !p.state_contains_key(inner, tuple.key()) {
                    p.state_insert(node, tuple.clone());
                    p.forward_or_emit(node, Payload::Insert { tuple, fresh });
                }
            } else {
                // Inner arrival: suppress matching visible outers.
                let mut victims = p.take_probe_scratch();
                p.lookup_state_into(node, tuple.key(), &mut victims);
                for v in victims.drain(..) {
                    let lin = v.lineage();
                    let key = v.key();
                    p.state_remove_by_lineage(node, &lin, key);
                    p.forward_or_emit(
                        node,
                        Payload::RemoveEntry {
                            lineage: lin,
                            key,
                            fresh,
                        },
                    );
                }
                p.recycle_probe_scratch(victims);
            }
        }
        Payload::Remove {
            stream,
            seq,
            key,
            fresh,
        } => {
            if from_left {
                let removed = p.state_remove_containing(node, stream, seq, key);
                if removed > 0 || p.plan().node(node).state.needs_completion(key) {
                    p.forward_or_emit(
                        node,
                        Payload::Remove {
                            stream,
                            seq,
                            key,
                            fresh,
                        },
                    );
                }
            } else {
                // Inner expiry: if the last matching inner tuple left the
                // window, formerly suppressed outers become visible again.
                if !p.state_contains_key(inner, key) {
                    let mut candidates = p.take_probe_scratch();
                    p.lookup_state_into(outer, key, &mut candidates);
                    for c in candidates.drain(..) {
                        if p.state_insert_if_absent(node, c.clone()) {
                            p.forward_or_emit(node, Payload::Insert { tuple: c, fresh });
                        }
                    }
                    p.recycle_probe_scratch(candidates);
                }
            }
        }
        Payload::RemoveEntry {
            lineage,
            key,
            fresh,
        } => {
            // Only meaningful from the outer side (inner children are scans).
            let removed = p.state_remove_superset(node, &lineage, key);
            if removed > 0 || p.plan().node(node).state.needs_completion(key) {
                p.forward_or_emit(
                    node,
                    Payload::RemoveEntry {
                        lineage,
                        key,
                        fresh,
                    },
                );
            }
        }
        Payload::SuppressKey { key, fresh } => {
            let removed = p.state_remove_key(node, key);
            if removed > 0 || p.plan().node(node).state.needs_completion(key) {
                p.forward_or_emit(node, Payload::SuppressKey { key, fresh });
            }
        }
    }
}

/// Aggregate above the root (§4.7): fold results; unaffected by migrations.
pub fn process_aggregate(p: &mut Pipeline, node: NodeId, kind: AggKind, item: QueueItem) {
    match item.payload {
        Payload::Insert { tuple, .. } => {
            let key = tuple.key();
            p.state_insert(node, tuple);
            log_agg(p, node, kind, key);
        }
        Payload::Remove {
            stream, seq, key, ..
        } => {
            if p.state_remove_containing(node, stream, seq, key) > 0 {
                log_agg(p, node, kind, key);
            }
        }
        Payload::RemoveEntry { lineage, key, .. } => {
            if p.state_remove_superset(node, &lineage, key) > 0 {
                log_agg(p, node, kind, key);
            }
        }
        Payload::SuppressKey { key, .. } => {
            if p.state_remove_key(node, key) > 0 {
                log_agg(p, node, kind, key);
            }
        }
    }
}

fn log_agg(p: &mut Pipeline, node: NodeId, kind: AggKind, key: jisc_common::Key) {
    match kind {
        AggKind::Count => {
            let total = p.plan().node(node).state.len() as u64;
            p.output.agg_log.push((None, total));
        }
        AggKind::GroupCount => {
            let count = p.state_match_count(node, key) as u64;
            p.output.agg_log.push((Some(key), count));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::spec::{Catalog, JoinStyle, PlanSpec};
    use jisc_common::StreamId;

    fn pipe(spec: PlanSpec, streams: &[&str], window: usize) -> Pipeline {
        let c = Catalog::uniform(streams, window).unwrap();
        Pipeline::new(c, &spec).unwrap()
    }

    #[test]
    fn nlj_band_join_matches_within_band() {
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Nlj(Predicate::BandWithin(1)));
        let mut p = pipe(spec, &["R", "S"], 100);
        p.push(StreamId(0), 10, 0).unwrap();
        p.push(StreamId(1), 11, 0).unwrap(); // |10-11| <= 1: match
        p.push(StreamId(1), 12, 0).unwrap(); // |10-12| > 1: no match
        assert_eq!(p.output.count(), 1);
        assert!(p.metrics.nlj_comparisons > 0);
    }

    #[test]
    fn nlj_asymmetric_predicate_orients_correctly() {
        // R.key <= S.key
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Nlj(Predicate::KeyLeq));
        let mut p = pipe(spec, &["R", "S"], 100);
        p.push(StreamId(0), 5, 0).unwrap();
        p.push(StreamId(1), 7, 0).unwrap(); // 5 <= 7: match
        p.push(StreamId(1), 3, 0).unwrap(); // 5 <= 3: no
        p.push(StreamId(0), 2, 0).unwrap(); // joins S=7 and S=3
        assert_eq!(p.output.count(), 3);
    }

    #[test]
    fn set_diff_basic_visibility() {
        let spec = PlanSpec::set_diff_chain(&["A", "B"]);
        let mut p = pipe(spec, &["A", "B"], 100);
        p.push(StreamId(0), 1, 0).unwrap(); // A(1) visible -> emitted
        assert_eq!(p.output.count(), 1);
        p.push(StreamId(1), 2, 0).unwrap(); // B(2): nothing suppressed
        p.push(StreamId(0), 2, 0).unwrap(); // A(2) suppressed by B(2)
        assert_eq!(p.output.count(), 1);
        p.push(StreamId(1), 1, 0).unwrap(); // B(1) suppresses A(1) in state
        let root = p.plan().root();
        assert_eq!(p.plan().node(root).state.len(), 0);
        assert_eq!(p.output.retractions, 1);
    }

    #[test]
    fn set_diff_inner_expiry_restores_visibility() {
        // B window of 1: pushing a second B evicts the first.
        let c = Catalog::new(vec![
            crate::spec::StreamDef::new("A", 100),
            crate::spec::StreamDef::new("B", 1),
        ])
        .unwrap();
        let mut p = Pipeline::new(c, &PlanSpec::set_diff_chain(&["A", "B"])).unwrap();
        p.push(StreamId(1), 7, 0).unwrap(); // B(7)
        p.push(StreamId(0), 7, 0).unwrap(); // A(7) suppressed
        assert_eq!(p.output.count(), 0);
        p.push(StreamId(1), 99, 0).unwrap(); // evicts B(7): A(7) re-emerges
        assert_eq!(p.output.count(), 1);
        assert_eq!(p.output.log[0].key(), 7);
    }

    #[test]
    fn set_diff_chain_three_streams() {
        let spec = PlanSpec::set_diff_chain(&["A", "B", "C"]);
        let mut p = pipe(spec, &["A", "B", "C"], 100);
        p.push(StreamId(1), 1, 0).unwrap(); // B(1)
        p.push(StreamId(2), 2, 0).unwrap(); // C(2)
        p.push(StreamId(0), 1, 0).unwrap(); // suppressed by B
        p.push(StreamId(0), 2, 0).unwrap(); // suppressed by C
        p.push(StreamId(0), 3, 0).unwrap(); // visible
        assert_eq!(p.output.count(), 1);
        assert_eq!(p.output.log[0].key(), 3);
    }

    #[test]
    fn aggregate_count_tracks_results() {
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash).with_aggregate(AggKind::Count);
        let mut p = pipe(spec, &["R", "S"], 100);
        p.push(StreamId(0), 1, 0).unwrap();
        p.push(StreamId(1), 1, 0).unwrap();
        p.push(StreamId(1), 1, 1).unwrap();
        assert_eq!(p.output.agg_log.last(), Some(&(None, 2)));
        // results are absorbed by the aggregate, not emitted raw
        assert_eq!(p.output.count(), 0);
    }

    #[test]
    fn aggregate_group_count_decrements_on_expiry() {
        let c = Catalog::uniform(&["R", "S"], 1).unwrap();
        let spec =
            PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash).with_aggregate(AggKind::GroupCount);
        let mut p = Pipeline::new(c, &spec).unwrap();
        p.push(StreamId(0), 4, 0).unwrap();
        p.push(StreamId(1), 4, 0).unwrap();
        assert_eq!(p.output.agg_log.last(), Some(&(Some(4), 1)));
        p.push(StreamId(0), 9, 0).unwrap(); // evicts R(4): joined result dies
        assert_eq!(p.output.agg_log.last(), Some(&(Some(4), 0)));
    }
}

#[cfg(test)]
mod integration_shape_tests {
    use super::*;
    use crate::spec::{Catalog, JoinStyle, PlanSpec, SpecNode, StreamDef};
    use jisc_common::StreamId;

    #[test]
    fn join_over_set_difference_suppression_propagates() {
        // (A − B) ⋈ C: suppressing an A tuple must kill join results.
        let c = Catalog::uniform(&["A", "B", "C"], 100).unwrap();
        let spec = PlanSpec::new(SpecNode::Join {
            style: JoinStyle::Hash,
            left: Box::new(SpecNode::SetDiff {
                left: Box::new(SpecNode::Scan("A".into())),
                right: Box::new(SpecNode::Scan("B".into())),
            }),
            right: Box::new(SpecNode::Scan("C".into())),
        });
        let mut p = Pipeline::new(c, &spec).unwrap();
        p.push(StreamId(0), 1, 0).unwrap(); // A(1) visible
        p.push(StreamId(2), 1, 0).unwrap(); // C(1): emits (A1, C1)
        assert_eq!(p.output.count(), 1);
        let root = p.plan().root();
        assert_eq!(p.plan().node(root).state.len(), 1);
        p.push(StreamId(1), 1, 0).unwrap(); // B(1) suppresses A(1)
                                            // The join result built from the suppressed tuple is purged.
        assert_eq!(p.plan().node(root).state.len(), 0);
        // And later C arrivals find no visible A(1).
        p.push(StreamId(2), 1, 1).unwrap();
        assert_eq!(p.output.count(), 1);
    }

    #[test]
    fn ingest_then_run_processes_one_arrival() {
        let c = Catalog::uniform(&["R", "S"], 100).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash);
        let mut p = Pipeline::new(c, &spec).unwrap();
        p.ingest(StreamId(0), 1, 0).unwrap();
        assert!(!p.plan().queues_empty());
        assert_eq!(p.output.count(), 0, "nothing processed yet");
        p.run();
        assert!(p.plan().queues_empty());
        p.push(StreamId(1), 1, 0).unwrap();
        assert_eq!(p.output.count(), 1);
    }

    #[test]
    fn ingest_rejects_batching_unprocessed_arrivals() {
        // With symmetric joins, batching arrivals would let a tuple probe
        // partners that arrived after it — the engine refuses.
        let c = Catalog::uniform(&["R", "S"], 100).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash);
        let mut p = Pipeline::new(c, &spec).unwrap();
        p.ingest(StreamId(0), 1, 0).unwrap();
        assert!(p.ingest(StreamId(1), 1, 0).is_err());
        p.run();
        assert!(p.ingest(StreamId(1), 1, 0).is_ok());
    }

    #[test]
    #[should_panic(expected = "safe transition requires empty input queues")]
    fn replace_plan_rejects_queued_tuples() {
        let c = Catalog::uniform(&["R", "S"], 10).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash);
        let mut p = Pipeline::new(c, &spec).unwrap();
        p.ingest(StreamId(0), 1, 0).unwrap(); // queued, not drained
        let other = p
            .compile(&PlanSpec::left_deep(&["S", "R"], JoinStyle::Hash))
            .unwrap();
        let _ = p.replace_plan(other); // must panic (§4.1)
    }

    #[test]
    fn per_stream_window_sizes_are_respected() {
        let c = Catalog::new(vec![StreamDef::new("R", 1), StreamDef::new("S", 3)]).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash);
        let mut p = Pipeline::new(c, &spec).unwrap();
        for k in 0..3 {
            p.push(StreamId(1), k, 0).unwrap(); // S keeps all three
        }
        p.push(StreamId(0), 0, 0).unwrap();
        p.push(StreamId(0), 1, 0).unwrap(); // evicts R(key 0)
        assert_eq!(p.output.count(), 2);
        assert_eq!(p.window_of(StreamId(0)).len(), 1);
        assert_eq!(p.window_of(StreamId(1)).len(), 3);
    }

    #[test]
    fn adoption_moves_matching_states_and_reports_discards() {
        let c = Catalog::uniform(&["R", "S", "T"], 50).unwrap();
        let spec = PlanSpec::left_deep(&["R", "S", "T"], JoinStyle::Hash);
        let mut p = Pipeline::new(c, &spec).unwrap();
        for i in 0..30u64 {
            p.push(StreamId((i % 3) as u16), i % 5, 0).unwrap();
        }
        let new_plan = p
            .compile(&PlanSpec::left_deep(&["T", "S", "R"], JoinStyle::Hash))
            .unwrap();
        let mut old = p.replace_plan(new_plan);
        let outcome = p.adopt_states(&mut old, |_, _| {});
        // 3 scans + root {R,S,T} survive; RS is discarded (new plan has TS).
        assert_eq!(outcome.adopted.len(), 4);
        assert_eq!(outcome.discarded.len(), 1);
        assert!(
            !outcome.discarded[0].1.is_empty(),
            "discarded RS state had entries"
        );
    }
}

#[cfg(test)]
mod time_window_tests {
    use super::*;
    use crate::spec::{Catalog, JoinStyle, PlanSpec, StreamDef};
    use jisc_common::StreamId;

    fn timed_pipeline(ticks: u64) -> Pipeline {
        let c = Catalog::new(vec![
            StreamDef::timed("R", ticks),
            StreamDef::timed("S", ticks),
        ])
        .unwrap();
        Pipeline::new(c, &PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash)).unwrap()
    }

    #[test]
    fn time_window_expires_by_age_not_count() {
        let mut p = timed_pipeline(10);
        p.push_at(StreamId(0), 1, 0, 100).unwrap();
        p.push_at(StreamId(0), 2, 0, 103).unwrap();
        p.push_at(StreamId(0), 3, 0, 105).unwrap();
        // At t=109 all three are alive (ages 9, 6, 4): three matches... for
        // key-specific probe only key 1 matches.
        p.push_at(StreamId(1), 1, 0, 109).unwrap();
        assert_eq!(p.output.count(), 1);
        // At t=112, R(1)@100 and R(2)@103 have aged out in one arrival.
        p.push_at(StreamId(1), 2, 0, 113).unwrap();
        assert_eq!(p.output.count(), 1, "key 2 expired at age 10");
        p.push_at(StreamId(1), 3, 0, 114).unwrap();
        assert_eq!(p.output.count(), 2, "key 3 (age 9) still alive");
        assert_eq!(p.window_of(StreamId(0)).len(), 1);
    }

    #[test]
    fn several_tuples_can_expire_on_one_arrival() {
        let mut p = timed_pipeline(5);
        for (k, t) in [(1u64, 10u64), (2, 11), (3, 12)] {
            p.push_at(StreamId(0), k, 0, t).unwrap();
        }
        assert_eq!(p.window_of(StreamId(0)).len(), 3);
        p.push_at(StreamId(1), 9, 0, 30).unwrap(); // everything aged out
        assert_eq!(p.window_of(StreamId(0)).len(), 0);
        let m = &p.metrics;
        assert!(m.removals >= 3, "all three expiries processed");
    }

    #[test]
    fn non_monotonic_timestamps_rejected() {
        let mut p = timed_pipeline(5);
        p.push_at(StreamId(0), 1, 0, 50).unwrap();
        assert!(p.push_at(StreamId(0), 1, 0, 49).is_err());
        assert!(
            p.push_at(StreamId(0), 1, 0, 50).is_ok(),
            "equal timestamps allowed"
        );
    }

    #[test]
    fn mixed_count_and_time_windows() {
        let c = Catalog::new(vec![
            StreamDef::new("R", 2),     // count window
            StreamDef::timed("S", 100), // time window
        ])
        .unwrap();
        let mut p = Pipeline::new(c, &PlanSpec::left_deep(&["R", "S"], JoinStyle::Hash)).unwrap();
        p.push_at(StreamId(0), 1, 0, 1).unwrap();
        p.push_at(StreamId(0), 2, 0, 2).unwrap();
        p.push_at(StreamId(0), 3, 0, 3).unwrap(); // count window evicts key 1
        p.push_at(StreamId(1), 1, 0, 4).unwrap();
        assert_eq!(p.output.count(), 0);
        p.push_at(StreamId(1), 3, 0, 5).unwrap();
        assert_eq!(p.output.count(), 1);
    }

    #[test]
    fn time_window_execution_is_deterministic() {
        // Migration-vs-static equivalence over time windows lives in the
        // core crate's differential tests (needs the strategy layer); here
        // we pin plain-engine determinism with irregular timestamps.
        use jisc_common::SplitMix64;
        let mk = || {
            Catalog::new(vec![
                StreamDef::timed("R", 40),
                StreamDef::timed("S", 40),
                StreamDef::timed("T", 40),
            ])
            .unwrap()
        };
        let initial = PlanSpec::left_deep(&["R", "S", "T"], JoinStyle::Hash);
        let mut rng = SplitMix64::new(5);
        let arrivals: Vec<(u16, u64, u64)> = (0..400)
            .map(|i| {
                (
                    rng.next_below(3) as u16,
                    rng.next_below(8),
                    i * 2 + rng.next_below(2),
                )
            })
            .collect();

        let mut re = Pipeline::new(mk(), &initial).unwrap();
        for &(s, k, t) in &arrivals {
            re.push_at(StreamId(s), k, 0, t).unwrap();
        }
        let mut other = Pipeline::new(mk(), &initial).unwrap();
        for &(s, k, t) in &arrivals {
            other.push_at(StreamId(s), k, 0, t).unwrap();
        }
        assert_eq!(
            re.output.lineage_multiset(),
            other.output.lineage_multiset(),
            "time-window execution must be deterministic"
        );
        assert!(re.output.count() > 0);
    }
}
