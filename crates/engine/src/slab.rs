//! Cache-conscious join-state storage: open-addressing index + slab arena.
//!
//! The previous hash layout (`FxHashMap<Key, Vec<Tuple>>`) paid one heap
//! allocation per key, scattered buckets across the heap, and made window
//! expiry retain-scan whole buckets. This module replaces it with three
//! cooperating structures, all hand-rolled (no new dependencies):
//!
//! * `RawIndex` — a SwissTable-style open-addressing table: a control
//!   array of one tag byte per slot (7 bits of hash, probed eight at a
//!   time with SWAR word operations) plus a parallel entry array mapping
//!   `Key → chain head`. Group probing means a lookup usually touches one
//!   control group and one entry line, and the whole index is two flat
//!   allocations that clone with `memcpy`.
//! * a **slab arena** of `Slot`s — every stored [`Tuple`] lives in one
//!   contiguous `Vec`, linked into an intrusive doubly-linked chain per
//!   key. Probing a key walks its chain through the slab instead of
//!   chasing per-key `Vec` allocations; freed slots are recycled through
//!   an intrusive free list, so steady-state churn allocates nothing.
//! * an **insertion-order ring** — a second intrusive list threading every
//!   live slot in arrival order. Sliding-window expiry removes the oldest
//!   base tuple of a stream; for scan states that tuple is (almost always)
//!   the ring head, so [`SlabStore::remove_containing`] pops it in O(1)
//!   amortized instead of retain-scanning its key's bucket — the hot-key
//!   case where the old layout degraded to O(bucket) per expiry.
//!
//! The index exposes pre-hashed probes ([`SlabStore::for_each_match_hashed`])
//! and a [`SlabStore::prefetch`] hint so the batched execution path in
//! [`Pipeline::push_batch_with`](crate::Pipeline::push_batch_with) can hash a
//! whole `TupleBatch` once and group-probe it with software prefetching.
//!
//! Probe work is observable: every find accumulates the number of control
//! groups examined into [`Metrics::probe_depth`], and index rebuilds count
//! into [`Metrics::slab_rehashes`] — both surfaced by `explain`.

use jisc_common::{hash_key, FxHashSet, Key, KeyRange, Metrics, Result, Tuple};

use crate::spill::{ColdTier, SpillConfig, SpillStats};

/// Null link in the intrusive lists.
const NIL: u32 = u32::MAX;

/// Control bytes per probe group (one `u64` word).
const GROUP: usize = 8;

/// Control byte: slot never used on this probe chain (terminates probing).
const EMPTY: u8 = 0xFF;

/// Control byte: slot freed but on a live probe chain (does not terminate).
const DELETED: u8 = 0x80;

const LSB: u64 = 0x0101_0101_0101_0101;
const MSB: u64 = 0x8080_8080_8080_8080;

/// 7-bit tag stored in the control array (high bits of the hash).
#[inline]
fn tag_of(h: u64) -> u8 {
    ((h >> 57) as u8) & 0x7F
}

/// SWAR: high bit set in every byte of `group` equal to `b`.
///
/// May produce false positives on bytes adjacent to a real match (classic
/// zero-byte-trick caveat); every use either verifies the candidate against
/// the key array or matches a byte value that rules the false-positive
/// pattern out (see `has_empty`).
#[inline]
fn bytes_eq(group: u64, b: u8) -> u64 {
    let x = group ^ LSB.wrapping_mul(b as u64);
    x.wrapping_sub(LSB) & !x & MSB
}

/// Does the group contain an `EMPTY` byte? Exact: a false positive would
/// need a `0xFE` control byte, which is never written (tags are 7-bit,
/// `DELETED` is `0x80`).
#[inline]
fn has_empty(group: u64) -> bool {
    bytes_eq(group, EMPTY) != 0
}

/// Prefetch the cache line holding `p` into all levels (no-op off x86_64).
#[inline]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// One key's index entry: the intrusive chain through the slab.
/// Hot half of an index slot: everything a single-match probe touches.
/// 16 bytes, so a probe group's pairs span exactly two cache lines and a
/// matched pair never straddles a line boundary.
#[derive(Debug, Clone)]
struct PairEntry {
    key: Key,
    /// The chain's tuple (an `Arc` clone) **iff the chain is a singleton**
    /// — the common equi-join case. Such a probe reads control group →
    /// pair → tuple and never touches the slab or the cold metadata: one
    /// dependent cache line fewer than the old layout's bucket-`Vec` hop.
    /// `None` means empty (vacant slot) or a multi-entry chain (walk the
    /// slab via [`ChainMeta`]).
    first: Option<Tuple>,
}

impl PairEntry {
    const VACANT: PairEntry = PairEntry {
        key: 0,
        first: None,
    };
}

/// Cold half of an index slot: the intrusive chain through the slab,
/// touched only on insert, removal, and multi-match walks.
#[derive(Debug, Clone, Copy)]
struct ChainMeta {
    /// First slot of the key's chain (oldest entry).
    head: u32,
    /// Last slot of the key's chain (newest entry).
    tail: u32,
    /// Chain length.
    len: u32,
}

impl ChainMeta {
    const VACANT: ChainMeta = ChainMeta {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

/// SwissTable-style open-addressing index: `Key → chain head`.
#[derive(Debug, Clone, Default)]
struct RawIndex {
    /// One tag byte per slot; length == capacity (a multiple of [`GROUP`]).
    ctrl: Vec<u8>,
    /// Parallel hot array (key + singleton tuple); length == capacity.
    pairs: Vec<PairEntry>,
    /// Parallel cold array (chain links); length == capacity.
    metas: Vec<ChainMeta>,
    /// Live keys.
    items: usize,
    /// Freed-but-chained slots awaiting a cleanup rehash.
    tombstones: usize,
    /// Inserts into `EMPTY` slots remaining before a rehash (7/8 load cap).
    growth_left: usize,
}

impl RawIndex {
    #[inline]
    fn capacity(&self) -> usize {
        self.ctrl.len()
    }

    #[inline]
    fn group(&self, g: usize) -> u64 {
        debug_assert!((g + 1) * GROUP <= self.ctrl.len());
        // SAFETY: callers mask `g` by `ngroups - 1` and `ctrl`'s length is
        // always a multiple of GROUP, so the 8-byte read is in bounds.
        let w = unsafe { (self.ctrl.as_ptr().add(g * GROUP) as *const u64).read_unaligned() };
        u64::from_le(w)
    }

    /// Find `key`'s index slot, accumulating probed groups into `depth`.
    #[inline]
    fn find(&self, h: u64, key: Key, depth: &mut u64) -> Option<usize> {
        if self.ctrl.is_empty() {
            return None;
        }
        let ngroups = self.capacity() / GROUP;
        let mask = ngroups - 1;
        let tag = tag_of(h);
        let mut g = (h as usize) & mask;
        let mut stride = 0;
        loop {
            *depth += 1;
            let group = self.group(g);
            let mut mm = bytes_eq(group, tag);
            while mm != 0 {
                let slot = g * GROUP + (mm.trailing_zeros() >> 3) as usize;
                // SAFETY: `slot < capacity` — `g` is masked and the byte
                // offset comes from an in-group bit position.
                let (ekey, ctrl) = unsafe {
                    (
                        self.pairs.get_unchecked(slot).key,
                        *self.ctrl.get_unchecked(slot),
                    )
                };
                if ekey == key && ctrl == tag {
                    return Some(slot);
                }
                mm &= mm - 1;
            }
            if has_empty(group) {
                return None;
            }
            stride += 1;
            if stride > ngroups {
                return None; // fully tombstoned table; unreachable in practice
            }
            g = (g + stride) & mask;
        }
    }

    /// Slot for `key`, inserting a vacant entry if absent. May rehash.
    fn find_or_insert(&mut self, h: u64, key: Key, m: &mut Metrics) -> usize {
        if let Some(slot) = self.find(h, key, &mut m.probe_depth) {
            return slot;
        }
        if self.growth_left == 0 {
            // Grow when genuinely full; same-size rehash just clears
            // tombstones left by churn.
            let cap = self.capacity().max(GROUP * 2);
            let new_cap = if self.items >= cap / 2 { cap * 2 } else { cap };
            self.rehash(new_cap, m);
        }
        let slot = self.insert_position(h);
        if self.ctrl[slot] == EMPTY {
            self.growth_left -= 1;
        } else {
            debug_assert_eq!(self.ctrl[slot], DELETED);
            self.tombstones -= 1;
        }
        self.ctrl[slot] = tag_of(h);
        self.pairs[slot] = PairEntry { key, first: None };
        self.metas[slot] = ChainMeta::VACANT;
        self.items += 1;
        slot
    }

    /// First empty-or-deleted slot along `h`'s probe sequence. The caller
    /// guarantees at least one exists (`growth_left > 0` after rehash).
    #[inline]
    fn insert_position(&self, h: u64) -> usize {
        let ngroups = self.capacity() / GROUP;
        let mask = ngroups - 1;
        let mut g = (h as usize) & mask;
        let mut stride = 0;
        loop {
            let group = self.group(g);
            let free = group & MSB;
            if free != 0 {
                return g * GROUP + (free.trailing_zeros() >> 3) as usize;
            }
            stride += 1;
            g = (g + stride) & mask;
        }
    }

    /// Mark a slot deleted (its key's chain emptied).
    #[inline]
    fn remove_at(&mut self, slot: usize) {
        self.ctrl[slot] = DELETED;
        self.pairs[slot] = PairEntry::VACANT;
        self.metas[slot] = ChainMeta::VACANT;
        self.items -= 1;
        self.tombstones += 1;
    }

    /// Rebuild at `new_cap` slots (power of two), dropping tombstones.
    fn rehash(&mut self, new_cap: usize, m: &mut Metrics) {
        debug_assert!(new_cap.is_power_of_two() && new_cap >= GROUP);
        m.slab_rehashes += 1;
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![EMPTY; new_cap]);
        let old_pairs = std::mem::replace(&mut self.pairs, vec![PairEntry::VACANT; new_cap]);
        let old_metas = std::mem::replace(&mut self.metas, vec![ChainMeta::VACANT; new_cap]);
        self.tombstones = 0;
        let items = self.items;
        self.items = 0;
        self.growth_left = new_cap / GROUP * (GROUP - 1);
        for (slot, e) in old_pairs.into_iter().enumerate() {
            if old_ctrl[slot] & 0x80 != 0 {
                continue; // empty or deleted
            }
            let h = hash_key(e.key);
            let dst = self.insert_position(h);
            debug_assert_eq!(self.ctrl[dst], EMPTY, "fresh table has no tombstones");
            self.ctrl[dst] = tag_of(h);
            self.pairs[dst] = e;
            self.metas[dst] = old_metas[slot];
            self.items += 1;
            self.growth_left -= 1;
        }
        debug_assert_eq!(self.items, items);
    }

    /// Pre-size for `keys` distinct keys without changing contents.
    fn reserve(&mut self, keys: usize, m: &mut Metrics) {
        let needed = (keys * GROUP).div_ceil(GROUP - 1).max(GROUP * 2);
        let new_cap = needed.next_power_of_two();
        if new_cap > self.capacity() {
            self.rehash(new_cap, m);
        }
    }

    /// Iterate live keys.
    fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.ctrl
            .iter()
            .zip(self.pairs.iter())
            .filter(|(c, _)| **c & 0x80 == 0)
            .map(|(_, e)| e.key)
    }

    fn clear(&mut self) {
        self.ctrl.fill(EMPTY);
        self.pairs.fill(PairEntry::VACANT);
        self.metas.fill(ChainMeta::VACANT);
        self.items = 0;
        self.tombstones = 0;
        self.growth_left = self.capacity() / GROUP * (GROUP - 1);
    }
}

/// One slab cell: the stored tuple plus its intrusive links.
#[derive(Debug, Clone)]
struct Slot {
    /// `None` marks a free-listed slot.
    tuple: Option<Tuple>,
    /// Previous slot in the key's chain.
    prev: u32,
    /// Next slot in the key's chain; doubles as the free-list link.
    next: u32,
    /// Previous slot in global insertion order.
    ord_prev: u32,
    /// Next slot in global insertion order.
    ord_next: u32,
}

/// Occupancy diagnostics for one store (see [`SlabStore::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabStats {
    /// Live entries in the slab arena.
    pub live: usize,
    /// Allocated slab slots (live + free-listed).
    pub slab_capacity: usize,
    /// Distinct keys in the index.
    pub keys: usize,
    /// Index capacity in slots.
    pub index_capacity: usize,
    /// Freed-but-chained index slots awaiting cleanup.
    pub tombstones: usize,
}

/// Hash-partitioned tuple storage: open-addressing index over a slab arena
/// with an insertion-order ring. Drop-in backing for
/// [`State`](crate::state::State)'s hash layout.
#[derive(Debug, Clone)]
pub struct SlabStore {
    index: RawIndex,
    slots: Vec<Slot>,
    free_head: u32,
    live: usize,
    /// Oldest live slot in insertion order (the expiry ring's head).
    ord_head: u32,
    /// Newest live slot in insertion order.
    ord_tail: u32,
    /// Memory-budgeted cold tier (None = classic unbounded in-memory
    /// store; every pre-spill code path is unchanged when disabled).
    cold: Option<Box<ColdTier>>,
    /// Live-entry count past which eviction kicks in — the byte budget
    /// pre-divided by [`HOT_ENTRY_EST_BYTES`] so the per-insert budget
    /// check is one load and compare instead of a walk through the cold
    /// tier's config. `usize::MAX` while no tier is attached.
    spill_live_limit: usize,
}

impl Default for SlabStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Estimated resident bytes per live hot entry: slot + amortized index
/// footprint + the tuple's heap allocation. A deliberate flat estimate —
/// the budget governs eviction pacing, it is not an allocator audit.
pub const HOT_ENTRY_EST_BYTES: usize = 128;

impl SlabStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        SlabStore {
            index: RawIndex::default(),
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
            ord_head: NIL,
            ord_tail: NIL,
            cold: None,
            spill_live_limit: usize::MAX,
        }
    }

    /// Live entries across both tiers (hot slots + cold stubs).
    #[inline]
    pub fn len(&self) -> usize {
        self.live + self.cold_entries()
    }

    /// True if no entries are stored in either tier.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct keys across both tiers.
    pub fn key_count(&self) -> usize {
        let mut depth = 0u64;
        self.index.items
            + self.cold.as_ref().map_or(0, |c| {
                c.keys()
                    .filter(|&k| self.index.find(hash_key(k), k, &mut depth).is_none())
                    .count()
            })
    }

    /// Occupancy diagnostics (hot tier only; see
    /// [`SlabStore::spill_stats`] for the cold tier).
    pub fn stats(&self) -> SlabStats {
        SlabStats {
            live: self.live,
            slab_capacity: self.slots.len(),
            keys: self.index.items,
            index_capacity: self.index.capacity(),
            tombstones: self.index.tombstones,
        }
    }

    // ----- memory-budgeted tiering -----

    /// Attach a cold tier: past `cfg.budget_bytes` of estimated hot bytes,
    /// the oldest entries of the insertion ring spill to sealed on-disk
    /// segments and fault back just-in-time when probed.
    pub fn enable_spill(&mut self, cfg: SpillConfig) -> Result<()> {
        if self.cold_entries() > 0 {
            return Err(jisc_common::JiscError::Internal(
                "cold tier already populated; cannot re-attach".into(),
            ));
        }
        self.spill_live_limit = cfg.budget_bytes / HOT_ENTRY_EST_BYTES;
        self.cold = Some(Box::new(ColdTier::new(cfg)?));
        Ok(())
    }

    /// Is a cold tier attached?
    #[inline]
    pub fn spill_enabled(&self) -> bool {
        self.cold.is_some()
    }

    /// Cold-tier occupancy, if tiering is enabled.
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.cold.as_ref().map(|c| c.stats())
    }

    /// Entries currently resident only as cold stubs.
    #[inline]
    pub fn cold_entries(&self) -> usize {
        self.cold.as_ref().map_or(0, |c| c.entries())
    }

    /// Estimated resident bytes of the hot tier (live entries ×
    /// [`HOT_ENTRY_EST_BYTES`]) — the figure the budget governs.
    #[inline]
    pub fn hot_bytes(&self) -> usize {
        self.live * HOT_ENTRY_EST_BYTES
    }

    /// Wall-clock fault-back latency histogram of the cold tier.
    pub fn fault_latency(&self) -> Option<jisc_telemetry::HistogramSnapshot> {
        self.cold.as_ref().map(|c| c.fault_latency())
    }

    /// Path of the cold tier's segment manifest, if one has been written.
    pub fn cold_manifest_file(&self) -> Option<std::path::PathBuf> {
        self.cold.as_ref().and_then(|c| c.manifest_file())
    }

    /// Does `key` have cold-resident entries that a slab probe would miss?
    #[inline]
    pub fn has_cold(&self, key: Key) -> bool {
        self.cold.as_ref().is_some_and(|c| c.contains(key))
    }

    /// Evict oldest ring entries to the cold tier while the hot estimate
    /// exceeds the budget (with 1/8 hysteresis so one insert does not seal
    /// one segment). Runs automatically after inserts; eviction moves
    /// entries between tiers, so [`SlabStore::len`] is unchanged.
    fn maybe_spill(&mut self, m: &mut Metrics) {
        let Some(cold) = self.cold.as_deref() else {
            return;
        };
        let budget = cold.config().budget_bytes;
        if self.hot_bytes() <= budget {
            return;
        }
        let target = budget / 8 * 7;
        let per_seg = (cold.config().segment_target_bytes / 16).max(16);
        let mut batch: Vec<(Key, Tuple)> = Vec::new();
        while self.hot_bytes() > target && self.ord_head != NIL {
            let slot = self.ord_head;
            let t = self.slots[slot as usize]
                .tuple
                .clone()
                .expect("ring head is live");
            let key = t.key();
            let idx = self
                .index
                .find(hash_key(key), key, &mut m.probe_depth)
                .expect("ring head is indexed");
            self.unlink(idx, slot);
            batch.push((key, t));
        }
        let cold = self.cold.as_deref_mut().expect("checked above");
        for chunk in batch.chunks(per_seg) {
            cold.spill_batch(chunk, m);
        }
    }

    /// Fault every cold entry of the given keys back into the hot tier in
    /// one sequential pass — the batch-aware just-in-time completion of the
    /// disk tier. Faulted entries rejoin their chains *ahead* of the hot
    /// entries (they are older), preserving per-key insertion order.
    /// Returns how many entries came back.
    pub fn fault_in_keys(&mut self, keys: impl IntoIterator<Item = Key>, m: &mut Metrics) -> usize {
        let Some(cold) = self.cold.as_deref() else {
            return 0;
        };
        if cold.is_empty() {
            return 0;
        }
        let mut wanted: Vec<Key> = keys.into_iter().filter(|&k| cold.contains(k)).collect();
        if wanted.is_empty() {
            return 0;
        }
        wanted.sort_unstable();
        wanted.dedup();
        let got = self
            .cold
            .as_deref_mut()
            .expect("checked above")
            .fault_keys(&wanted, m);
        let mut n = 0;
        for (key, tuples) in got {
            n += tuples.len();
            let idx = self.index.find_or_insert(hash_key(key), key, m);
            for t in tuples.into_iter().rev() {
                let slot = self.alloc_slot(t, m);
                self.link_head(idx, slot);
            }
        }
        n
    }

    /// [`SlabStore::fault_in_keys`] for one key.
    #[inline]
    pub fn fault_in_key(&mut self, key: Key, m: &mut Metrics) -> usize {
        if !self.has_cold(key) {
            return 0;
        }
        self.fault_in_keys([key], m)
    }

    /// Fault back everything (full-store scans, e.g. theta probes or
    /// snapshot paths that must see every entry).
    pub fn fault_in_all(&mut self, m: &mut Metrics) -> usize {
        let keys: Vec<Key> = match self.cold.as_deref() {
            Some(c) if !c.is_empty() => c.keys().collect(),
            _ => return 0,
        };
        self.fault_in_keys(keys, m)
    }

    /// Pre-size the index and arena for roughly `entries` entries over
    /// `keys` distinct keys (checkpoint restore pre-sizes from the
    /// snapshot so replay does not pay growth rehashes).
    pub fn reserve(&mut self, keys: usize, entries: usize, m: &mut Metrics) {
        self.index.reserve(keys, m);
        if entries > self.slots.len() {
            self.slots.reserve(entries - self.slots.len());
        }
    }

    /// Prefetch the control group and hot pair lines `h` will probe — three
    /// cache lines total (`PairEntry` is 16 bytes, so the group's pairs
    /// span exactly two lines).
    #[inline]
    pub fn prefetch(&self, h: u64) {
        let cap = self.index.capacity();
        if cap == 0 {
            return;
        }
        let g = (h as usize) & (cap / GROUP - 1);
        let base = g * GROUP;
        prefetch_read(&self.index.ctrl[base]);
        prefetch_read(&self.index.pairs[base]);
        prefetch_read(&self.index.pairs[base + GROUP / 2]);
    }

    // ----- internal plumbing -----

    #[inline]
    fn alloc_slot(&mut self, t: Tuple, m: &mut Metrics) -> u32 {
        if self.free_head != NIL {
            let s = self.free_head;
            let slot = &mut self.slots[s as usize];
            self.free_head = slot.next;
            slot.tuple = Some(t);
            m.slab_slot_reuses += 1;
            s
        } else {
            self.slots.push(Slot {
                tuple: Some(t),
                prev: NIL,
                next: NIL,
                ord_prev: NIL,
                ord_next: NIL,
            });
            (self.slots.len() - 1) as u32
        }
    }

    /// Append `slot` to the chain of index entry `idx` and the order ring,
    /// keeping the `first`-iff-singleton mirror in the hot pair current.
    #[inline]
    fn link_tail(&mut self, idx: usize, slot: u32) {
        let tail = self.index.metas[idx].tail;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = tail;
            s.next = NIL;
            s.ord_prev = self.ord_tail;
            s.ord_next = NIL;
        }
        if tail == NIL {
            self.index.metas[idx].head = slot;
            self.index.pairs[idx].first = self.slots[slot as usize].tuple.clone();
        } else {
            self.slots[tail as usize].next = slot;
            if self.index.metas[idx].len == 1 {
                // Chain grew past one entry: probes must walk the slab.
                self.index.pairs[idx].first = None;
            }
        }
        self.index.metas[idx].tail = slot;
        self.index.metas[idx].len += 1;
        if self.ord_tail == NIL {
            self.ord_head = slot;
        } else {
            self.slots[self.ord_tail as usize].ord_next = slot;
        }
        self.ord_tail = slot;
        self.live += 1;
    }

    /// Prepend `slot` to the chain of index entry `idx` and the order
    /// ring's head — fault-back re-links cold entries, which are strictly
    /// older than every hot entry, ahead of the existing chain so per-key
    /// insertion order survives a spill/fault round trip.
    fn link_head(&mut self, idx: usize, slot: u32) {
        let head = self.index.metas[idx].head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = head;
            s.ord_prev = NIL;
            s.ord_next = self.ord_head;
        }
        if head == NIL {
            self.index.metas[idx].tail = slot;
            self.index.pairs[idx].first = self.slots[slot as usize].tuple.clone();
        } else {
            self.slots[head as usize].prev = slot;
            if self.index.metas[idx].len == 1 {
                self.index.pairs[idx].first = None;
            }
        }
        self.index.metas[idx].head = slot;
        self.index.metas[idx].len += 1;
        if self.ord_head == NIL {
            self.ord_tail = slot;
        } else {
            self.slots[self.ord_head as usize].ord_prev = slot;
        }
        self.ord_head = slot;
        self.live += 1;
    }

    /// Unlink `slot` from entry `idx`'s chain and the order ring, free it,
    /// and drop the key from the index when its chain empties.
    fn unlink(&mut self, idx: usize, slot: u32) {
        let (prev, next, ord_prev, ord_next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next, s.ord_prev, s.ord_next)
        };
        if prev == NIL {
            self.index.metas[idx].head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.index.metas[idx].tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.index.metas[idx].len -= 1;
        if ord_prev == NIL {
            self.ord_head = ord_next;
        } else {
            self.slots[ord_prev as usize].ord_next = ord_next;
        }
        if ord_next == NIL {
            self.ord_tail = ord_prev;
        } else {
            self.slots[ord_next as usize].ord_prev = ord_prev;
        }
        let s = &mut self.slots[slot as usize];
        s.tuple = None;
        s.next = self.free_head;
        self.free_head = slot;
        self.live -= 1;
        match self.index.metas[idx].len {
            0 => self.index.remove_at(idx),
            // Chain shrank back to a singleton: restore the hot mirror.
            1 => {
                let head = self.index.metas[idx].head;
                self.index.pairs[idx].first = self.slots[head as usize].tuple.clone();
            }
            _ => {}
        }
    }

    /// Remove every chain entry failing `keep`; returns how many went.
    fn retain_chain(&mut self, idx: usize, mut keep: impl FnMut(&Tuple) -> bool) -> usize {
        let mut removed = 0;
        let mut cur = self.index.metas[idx].head;
        while cur != NIL {
            let next = self.slots[cur as usize].next;
            let drop = {
                let t = self.slots[cur as usize].tuple.as_ref().expect("live slot");
                !keep(t)
            };
            if drop {
                self.unlink(idx, cur);
                removed += 1;
                if self.index.metas[idx].len == 0 {
                    break; // idx was tombstoned; entry data is vacant now
                }
            }
            cur = next;
        }
        removed
    }

    // ----- entry operations -----

    /// Insert `t` under its own key.
    pub fn insert(&mut self, t: Tuple, m: &mut Metrics) {
        let key = t.key();
        let h = hash_key(key);
        self.insert_hashed(h, key, t, m);
    }

    /// [`SlabStore::insert`] with the key's hash already computed.
    #[inline]
    pub fn insert_hashed(&mut self, h: u64, key: Key, t: Tuple, m: &mut Metrics) {
        let idx = self.index.find_or_insert(h, key, m);
        let slot = self.alloc_slot(t, m);
        self.link_tail(idx, slot);
        if self.live > self.spill_live_limit {
            self.maybe_spill(m);
        }
    }

    /// Visit each entry matching `key` in insertion order.
    #[inline]
    pub fn for_each_match(&self, key: Key, m: &mut Metrics, f: impl FnMut(&Tuple)) {
        self.for_each_match_hashed(hash_key(key), key, m, f);
    }

    /// [`SlabStore::for_each_match`] with the hash already computed
    /// (batched probe kernel).
    #[inline]
    pub fn for_each_match_hashed(
        &self,
        h: u64,
        key: Key,
        m: &mut Metrics,
        mut f: impl FnMut(&Tuple),
    ) {
        debug_assert!(
            !self.has_cold(key),
            "probe of cold-resident key {key} without fault-in; callers must \
             fault_in_key(s) first (the batch prefault in flush_run)"
        );
        if let Some(idx) = self.index.find(h, key, &mut m.probe_depth) {
            // Singleton chain: the hot pair's inline mirror answers the
            // probe without touching the slab or the cold chain metadata.
            if let Some(t) = &self.index.pairs[idx].first {
                f(t);
                return;
            }
            let mut cur = self.index.metas[idx].head;
            while cur != NIL {
                let s = &self.slots[cur as usize];
                f(s.tuple.as_ref().expect("live slot"));
                cur = s.next;
            }
        }
    }

    /// Number of entries matching `key` — O(1) after the index find; cold
    /// stubs are counted without touching disk.
    #[inline]
    pub fn match_count(&self, key: Key, m: &mut Metrics) -> usize {
        self.index
            .find(hash_key(key), key, &mut m.probe_depth)
            .map_or(0, |idx| self.index.metas[idx].len as usize)
            + self.cold.as_ref().map_or(0, |c| c.count(key))
    }

    /// True if at least one entry matches `key` in either tier (the cold
    /// stub index answers without disk I/O).
    #[inline]
    pub fn contains_key(&self, key: Key, m: &mut Metrics) -> bool {
        self.index
            .find(hash_key(key), key, &mut m.probe_depth)
            .is_some()
            || self.has_cold(key)
    }

    /// Remove all entries containing the base tuple `(stream, seq)` under
    /// `key`. The ring head is checked first: window expiry removes base
    /// tuples oldest-first, so a scan state's victim is the oldest live
    /// slot and unlinks in O(1) without walking its key's chain.
    pub fn remove_containing(
        &mut self,
        stream: jisc_common::StreamId,
        seq: jisc_common::SeqNo,
        key: Key,
        m: &mut Metrics,
    ) -> usize {
        // Cold entries first: an expired *base* stub is dropped without any
        // disk read; a joined stub whose seq range covers the victim must
        // fault back (its lineage lives on disk) and is then handled by the
        // hot retain below.
        let mut cold_removed = 0;
        if self.has_cold(key) {
            if self
                .cold
                .as_ref()
                .expect("has_cold")
                .joined_may_contain(key, seq)
            {
                self.fault_in_key(key, m);
            } else {
                cold_removed = self
                    .cold
                    .as_deref_mut()
                    .expect("has_cold")
                    .remove_base(key, stream, seq, m);
            }
        }
        let h = hash_key(key);
        if self.ord_head != NIL {
            let head = self.ord_head;
            let is_victim = match &self.slots[head as usize].tuple {
                Some(Tuple::Base(b)) => b.stream == stream && b.seq == seq && b.key == key,
                _ => false,
            };
            if is_victim {
                let idx = self
                    .index
                    .find(h, key, &mut m.probe_depth)
                    .expect("ring head is indexed");
                self.unlink(idx, head);
                return cold_removed + 1;
            }
        }
        cold_removed
            + match self.index.find(h, key, &mut m.probe_depth) {
                None => 0,
                Some(idx) => self.retain_chain(idx, |t| !t.contains_base(stream, seq)),
            }
    }

    /// Remove entries with exactly this lineage; returns how many went.
    pub fn remove_by_lineage(
        &mut self,
        lin: &jisc_common::Lineage,
        key: Key,
        m: &mut Metrics,
    ) -> usize {
        self.fault_in_key(key, m); // lineage comparison needs the tuples
        match self.index.find(hash_key(key), key, &mut m.probe_depth) {
            None => 0,
            Some(idx) => self.retain_chain(idx, |t| t.lineage() != *lin),
        }
    }

    /// Remove entries whose lineage contains every constituent of `lin`.
    pub fn remove_superset(
        &mut self,
        lin: &jisc_common::Lineage,
        key: Key,
        m: &mut Metrics,
    ) -> usize {
        self.fault_in_key(key, m); // containment check needs the tuples
        let contains_all = |t: &Tuple| lin.parts().iter().all(|(s, q)| t.contains_base(*s, *q));
        match self.index.find(hash_key(key), key, &mut m.probe_depth) {
            None => 0,
            Some(idx) => self.retain_chain(idx, |t| !contains_all(t)),
        }
    }

    /// Remove every entry stored under `key`; returns how many went. Cold
    /// entries are dropped stub-only — no disk read for a whole-key drop.
    pub fn remove_key(&mut self, key: Key, m: &mut Metrics) -> usize {
        let cold_removed = self.cold.as_deref_mut().map_or(0, |c| c.remove_key(key, m));
        cold_removed
            + match self.index.find(hash_key(key), key, &mut m.probe_depth) {
                None => 0,
                Some(idx) => self.retain_chain(idx, |_| false),
            }
    }

    /// Remove every entry whose key hashes into one of `ranges` — per-range
    /// extraction for elastic repartitioning. Returns the distinct keys
    /// whose chains were removed (in index order; callers needing a stable
    /// order must sort) and the total entry count removed.
    pub fn extract_key_range(&mut self, ranges: &[KeyRange], m: &mut Metrics) -> (Vec<Key>, usize) {
        // Cold keys in the moved ranges fault back first (one sequential
        // read of the touched segments — no full-store rehydration), so the
        // hot extraction below sees every moved entry.
        if self.cold.is_some() {
            let cold_moved: Vec<Key> = self
                .cold
                .as_deref()
                .expect("checked")
                .keys()
                .filter(|&k| {
                    let h = hash_key(k);
                    ranges.iter().any(|r| r.contains(h))
                })
                .collect();
            self.fault_in_keys(cold_moved, m);
        }
        let moved: Vec<Key> = self
            .index
            .keys()
            .filter(|&k| {
                let h = hash_key(k);
                ranges.iter().any(|r| r.contains(h))
            })
            .collect();
        let mut removed = 0;
        for &k in &moved {
            removed += self.remove_key(k, m);
        }
        (moved, removed)
    }

    /// Insert unless an equal-lineage entry exists under the same key.
    pub fn insert_if_absent(&mut self, t: Tuple, m: &mut Metrics) -> bool {
        let key = t.key();
        self.fault_in_key(key, m); // the duplicate check walks the chain
        let h = hash_key(key);
        let lin = t.lineage();
        if let Some(idx) = self.index.find(h, key, &mut m.probe_depth) {
            let mut cur = self.index.metas[idx].head;
            while cur != NIL {
                let s = &self.slots[cur as usize];
                if s.tuple.as_ref().expect("live slot").lineage() == lin {
                    return false;
                }
                cur = s.next;
            }
            let slot = self.alloc_slot(t, m);
            self.link_tail(idx, slot);
        } else {
            self.insert_hashed(h, key, t, m);
        }
        true
    }

    /// Distinct keys currently present in either tier.
    pub fn distinct_keys(&self) -> FxHashSet<Key> {
        let mut keys: FxHashSet<Key> = self.index.keys().collect();
        if let Some(c) = self.cold.as_deref() {
            keys.extend(c.keys());
        }
        keys
    }

    /// Iterate all *hot* entries in insertion order. Callers that must see
    /// every entry of a spilled store (theta scans, snapshots) fault the
    /// cold tier back first via [`SlabStore::fault_in_all`].
    pub fn iter(&self) -> SlabIter<'_> {
        debug_assert_eq!(
            self.cold_entries(),
            0,
            "iter() over a store with cold entries; fault_in_all first"
        );
        SlabIter {
            slots: &self.slots,
            cur: self.ord_head,
        }
    }

    /// Drop every entry (both tiers), keeping allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free_head = NIL;
        self.live = 0;
        self.ord_head = NIL;
        self.ord_tail = NIL;
        if let Some(c) = self.cold.as_deref_mut() {
            c.clear();
        }
    }
}

/// Insertion-order iterator over a [`SlabStore`].
#[derive(Debug)]
pub struct SlabIter<'a> {
    slots: &'a [Slot],
    cur: u32,
}

impl<'a> Iterator for SlabIter<'a> {
    type Item = &'a Tuple;

    #[inline]
    fn next(&mut self) -> Option<&'a Tuple> {
        if self.cur == NIL {
            return None;
        }
        let s = &self.slots[self.cur as usize];
        self.cur = s.ord_next;
        Some(s.tuple.as_ref().expect("ring threads live slots"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jisc_common::{BaseTuple, StreamId};

    fn bt(stream: u16, seq: u64, key: Key) -> Tuple {
        Tuple::base(BaseTuple::new(StreamId(stream), seq, key, 0))
    }

    fn keys_of(s: &SlabStore, key: Key) -> Vec<u64> {
        let mut m = Metrics::new();
        let mut out = Vec::new();
        s.for_each_match(key, &mut m, |t| out.push(t.max_seq()));
        out
    }

    #[test]
    fn insert_find_and_chain_order() {
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        for seq in 0..5 {
            s.insert(bt(0, seq, 7), &mut m);
        }
        s.insert(bt(0, 9, 8), &mut m);
        assert_eq!(s.len(), 6);
        assert_eq!(s.key_count(), 2);
        assert_eq!(keys_of(&s, 7), vec![0, 1, 2, 3, 4], "insertion order");
        assert_eq!(s.match_count(7, &mut m), 5);
        assert!(s.contains_key(8, &mut m));
        assert!(!s.contains_key(99, &mut m));
        assert!(m.probe_depth > 0, "probes are accounted");
    }

    #[test]
    fn churn_against_reference_map() {
        use jisc_common::{FxHashMap, SplitMix64};
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        let mut reference: FxHashMap<Key, Vec<u64>> = FxHashMap::default();
        let mut rng = SplitMix64::new(42);
        for seq in 0..4000u64 {
            let key = rng.next_below(97);
            if rng.next_below(4) == 0 {
                let removed = s.remove_key(key, &mut m);
                let expected = reference.remove(&key).map_or(0, |v| v.len());
                assert_eq!(removed, expected, "remove_key({key})");
            } else {
                s.insert(bt(0, seq, key), &mut m);
                reference.entry(key).or_default().push(seq);
            }
        }
        assert_eq!(s.key_count(), reference.len());
        assert_eq!(s.len(), reference.values().map(Vec::len).sum::<usize>());
        for (k, v) in &reference {
            assert_eq!(&keys_of(&s, *k), v, "chain for key {k}");
        }
        // rehashes happened (growth and/or tombstone cleanup) and the
        // arena recycled freed slots
        assert!(m.slab_rehashes > 0);
        assert!(m.slab_slot_reuses > 0);
        assert!(s.stats().slab_capacity < 4000, "slots are recycled");
    }

    #[test]
    fn ring_pops_fifo_expiry_in_order() {
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        // Hot key: many entries under one key — the old layout retain-scans
        // the whole bucket per expiry; the ring head pops each in O(1).
        for seq in 0..64 {
            s.insert(bt(0, seq, 5), &mut m);
        }
        for seq in 0..64 {
            assert_eq!(s.remove_containing(StreamId(0), seq, 5, &mut m), 1);
        }
        assert!(s.is_empty());
        assert_eq!(s.key_count(), 0);
    }

    #[test]
    fn out_of_order_removal_keeps_ring_consistent() {
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        for seq in 0..6 {
            s.insert(bt(0, seq, seq % 2), &mut m);
        }
        // Remove a middle element (not the ring head).
        assert_eq!(s.remove_containing(StreamId(0), 3, 1, &mut m), 1);
        let order: Vec<u64> = s.iter().map(|t| t.max_seq()).collect();
        assert_eq!(order, vec![0, 1, 2, 4, 5]);
        // Head removal still O(1)-paths correctly afterwards.
        assert_eq!(s.remove_containing(StreamId(0), 0, 0, &mut m), 1);
        let order: Vec<u64> = s.iter().map(|t| t.max_seq()).collect();
        assert_eq!(order, vec![1, 2, 4, 5]);
    }

    #[test]
    fn hashed_probe_agrees_with_plain_probe() {
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        for seq in 0..100 {
            s.insert(bt(0, seq, seq % 13), &mut m);
        }
        for key in 0..13 {
            let mut a = Vec::new();
            s.for_each_match(key, &mut m, |t| a.push(t.max_seq()));
            let mut b = Vec::new();
            s.for_each_match_hashed(hash_key(key), key, &mut m, |t| b.push(t.max_seq()));
            assert_eq!(a, b);
        }
        s.prefetch(hash_key(5)); // smoke: must not panic on any table size
        SlabStore::new().prefetch(hash_key(5));
    }

    #[test]
    fn clone_is_deep() {
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        for seq in 0..10 {
            s.insert(bt(0, seq, seq), &mut m);
        }
        let snap = s.clone();
        s.remove_key(3, &mut m);
        assert_eq!(s.len(), 9);
        assert_eq!(snap.len(), 10);
        assert_eq!(keys_of(&snap, 3), vec![3]);
    }

    #[test]
    fn clear_retains_capacity_and_resets_ring() {
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        for seq in 0..50 {
            s.insert(bt(0, seq, seq), &mut m);
        }
        let cap_before = s.stats().index_capacity;
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.stats().index_capacity, cap_before);
        s.insert(bt(0, 1, 1), &mut m);
        assert_eq!(s.len(), 1);
        assert_eq!(keys_of(&s, 1), vec![1]);
    }

    #[test]
    fn tiny_budget_spills_oldest_and_faults_back_in_order() {
        use crate::spill::{ScratchDir, SpillConfig};
        let dir = ScratchDir::new("slab-spill");
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        // Budget of 4 hot entries: everything older spills. A tiny segment
        // target forces the active segment to seal during the run so the
        // sealed-segment counter is exercised too.
        let mut cfg = SpillConfig::new(4 * HOT_ENTRY_EST_BYTES, dir.path());
        cfg.segment_target_bytes = 256;
        s.enable_spill(cfg).unwrap();
        for seq in 0..64 {
            s.insert(bt(0, seq, seq % 5), &mut m);
        }
        assert_eq!(s.len(), 64, "len spans both tiers");
        assert!(s.cold_entries() > 0, "budget forced evictions");
        assert!(s.stats().live <= 4, "hot tier respects the budget");
        assert!(m.spill_evictions > 0 && m.spill_segments_sealed > 0);
        assert_eq!(s.key_count(), 5);
        assert_eq!(s.match_count(2, &mut m), 13, "stub counts need no disk");
        assert!(s.contains_key(2, &mut m));

        // Fault one key back: its chain order is original insertion order.
        s.fault_in_key(2, &mut m);
        assert!(!s.has_cold(2));
        assert_eq!(
            keys_of(&s, 2),
            (0..64).filter(|q| q % 5 == 2).collect::<Vec<u64>>()
        );
        assert!(m.spill_faults > 0);

        // Whole-key removal of a cold key touches no disk and drops stubs.
        let gone = s.remove_key(3, &mut m);
        assert_eq!(gone, 13);
        assert!(!s.has_cold(3));

        // fault_in_all drains the cold tier completely.
        s.fault_in_all(&mut m);
        assert_eq!(s.cold_entries(), 0);
        assert_eq!(s.len(), 64 - 13);
        assert_eq!(s.iter().count(), 64 - 13);
    }

    #[test]
    fn spilled_base_expiry_drops_stubs_without_fault() {
        use crate::spill::{ScratchDir, SpillConfig};
        let dir = ScratchDir::new("slab-expiry");
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        s.enable_spill(SpillConfig::new(2 * HOT_ENTRY_EST_BYTES, dir.path()))
            .unwrap();
        for seq in 0..32 {
            s.insert(bt(0, seq, seq % 4), &mut m);
        }
        let faults_before = m.spill_faults;
        // FIFO expiry, exactly as a sliding window drives it.
        for seq in 0..32 {
            assert_eq!(s.remove_containing(StreamId(0), seq, seq % 4, &mut m), 1);
        }
        assert!(s.is_empty());
        assert_eq!(s.cold_entries(), 0);
        assert_eq!(
            m.spill_faults, faults_before,
            "base-stub expiry never reads disk"
        );
        assert!(m.spill_segments_dropped > 0, "dead segments dropped O(1)");
    }

    #[test]
    fn spilled_clone_is_independent() {
        use crate::spill::{ScratchDir, SpillConfig};
        let dir = ScratchDir::new("slab-clone");
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        s.enable_spill(SpillConfig::new(2 * HOT_ENTRY_EST_BYTES, dir.path()))
            .unwrap();
        for seq in 0..16 {
            s.insert(bt(0, seq, seq), &mut m);
        }
        let mut snap = s.clone();
        s.remove_key(3, &mut m);
        assert_eq!(s.len(), 15);
        assert_eq!(snap.len(), 16);
        snap.fault_in_all(&mut m);
        assert_eq!(snap.len(), 16);
        assert_eq!(keys_of(&snap, 3), vec![3]);
    }

    #[test]
    fn reserve_presizes_index() {
        let mut m = Metrics::new();
        let mut s = SlabStore::new();
        s.reserve(1000, 2000, &mut m);
        let rehashes_after_reserve = m.slab_rehashes;
        for seq in 0..1000 {
            s.insert(bt(0, seq, seq), &mut m);
        }
        assert_eq!(
            m.slab_rehashes, rehashes_after_reserve,
            "pre-sized index absorbs the inserts without growing"
        );
    }
}
