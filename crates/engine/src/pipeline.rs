//! The pipelined execution engine: streams in, operator tree, results out.
//!
//! A [`Pipeline`] owns a compiled [`Plan`], the per-stream sliding-window
//! rings, the freshness bookkeeping of §4.4, the output sink, and the
//! execution metrics. Tuples are [`Pipeline::ingest`]ed into per-operator
//! input queues and drained by [`Pipeline::run_with`] under a pluggable
//! [`Semantics`] — the default semantics implement plain symmetric-hash-join
//! pipelining (§2.1); the JISC, Moving State, and Parallel Track strategies
//! in `jisc-core` supply their own.

use std::sync::Arc;

use jisc_common::{
    hash_key, BaseTuple, BatchedTuple, FxHashMap, FxHashSet, JiscError, Key, Lineage, Metrics,
    Result, SeqNo, StreamId, Tuple, TupleBatch,
};

use crate::ops::DefaultSemantics;
use crate::output::OutputSink;
use crate::plan::{NodeId, OpKind, Payload, Plan, QueueItem, Signature};
use crate::predicate::Predicate;
use crate::spec::{Catalog, PlanSpec, WindowSpec};
use crate::state::State;

/// Pluggable operator semantics: how one queued item is processed at a node.
///
/// Implementations receive the whole pipeline so they can probe sibling
/// states, insert results, and forward items. [`DefaultSemantics`] gives the
/// paper's plain pipelined execution; migration strategies override it.
pub trait Semantics {
    /// Process one queue item at `node`.
    fn process(&mut self, p: &mut Pipeline, node: NodeId, item: QueueItem);

    /// Hook called by the batched execution path immediately before a
    /// delta tuple with `key` probes `state_node`'s state — the batched
    /// counterpart of whatever per-item preparation `process` does before
    /// probing the opposite state. The default is a no-op (plain
    /// pipelining needs none); JISC semantics complete the probed key on
    /// demand here.
    fn before_probe(&mut self, _p: &mut Pipeline, _state_node: NodeId, _key: Key) {}

    /// May the columnar path run window-expiry removals through its bulk
    /// retraction kernel instead of per-item [`Semantics::process`] calls?
    /// Return true only when this implementation's `Remove` handling is
    /// exactly the default semantics' in the pipeline's current state —
    /// the kernel replays the default removal walk (remove containing
    /// entries, forward while matches are found) without consulting
    /// `process`. The conservative default is false.
    fn bulk_retract_ok(&self, _p: &Pipeline) -> bool {
        false
    }
}

/// Probe lookahead of the batch kernel: while one delta tuple's matches are
/// materialized, the index lines this many items ahead are prefetched.
/// Deep enough to cover a main-memory miss, shallow enough not to thrash
/// L1 on small batches.
pub(crate) const PREFETCH_DIST: usize = 8;

/// States smaller than this skip probe prefetching entirely: their index
/// fits in cache, so the prefetch instructions are pure overhead.
pub(crate) const PREFETCH_MIN_STATE: usize = 4096;

/// Below this `|δl|·|δr|` product the intra-batch pairing term uses the
/// plain nested loop; above it, a keyed index over the right delta. The
/// nested loop wins on small deltas (no map to build or allocate), the
/// index on large ones (the nested loop is quadratic in batch size).
pub(crate) const INTRA_PAIR_KEYED_MIN: usize = 2048;

/// Per-node delta scratch buffers shrink back to this capacity after each
/// flush, so one outlier batch cannot pin its high-water allocation.
pub(crate) const DELTA_SCRATCH_CAP: usize = 1024;

/// Result of [`Pipeline::adopt_states`]: which signatures were adopted into
/// the running plan, and the donor states that were discarded.
#[derive(Debug)]
pub struct AdoptionOutcome {
    /// Signatures whose states moved into the new plan.
    pub adopted: Vec<Signature>,
    /// Old-plan states with no matching node in the new plan.
    pub discarded: Vec<(Signature, State)>,
}

/// The execution engine for one query.
#[derive(Debug)]
pub struct Pipeline {
    pub(crate) catalog: Catalog,
    pub(crate) plan: Plan,
    /// Per-stream window ring: `(timestamp, tuple)` in arrival order,
    /// oldest at the front. Timestamps drive time-based windows; count
    /// windows ignore them.
    pub(crate) rings: Vec<std::collections::VecDeque<(u64, Arc<BaseTuple>)>>,
    /// Per-stream, per-key sequence number of the most recent arrival
    /// (Definition 2 freshness is an O(1) probe of this map, §4.4).
    pub(crate) fresh: Vec<FxHashMap<Key, SeqNo>>,
    pub(crate) next_seq: SeqNo,
    /// Most recent arrival timestamp (monotonicity enforced for push_at).
    pub(crate) last_ts: u64,
    /// Event-time watermark high-water mark: highest `ts` ever passed to
    /// [`Pipeline::apply_watermark_with`]. Purely an idempotence filter —
    /// expiry itself is driven through `last_ts` — and deliberately *not*
    /// part of the base-state snapshot: after a restore it resets to 0 and
    /// replayed watermarks are simply re-absorbed as no-ops.
    pub(crate) watermark: u64,
    /// Active lateness policy for out-of-order arrivals; `None` means
    /// strict (a regressing timestamp is an error).
    pub(crate) lateness: Option<crate::lateness::LatenessPolicy>,
    /// Cached: does any stream use a time-based window?
    pub(crate) has_time_windows: bool,
    pub(crate) last_transition_seq: SeqNo,
    /// Items currently sitting in operator input queues (scheduler state).
    pub(crate) pending_items: usize,
    /// Reused per-arrival buffer for tuples expiring out of the windows,
    /// so the steady-state ingest path allocates nothing.
    pub(crate) expired_scratch: Vec<Arc<BaseTuple>>,
    /// Reused buffer for join-probe results (see
    /// [`Pipeline::take_probe_scratch`]).
    probe_scratch: Vec<Tuple>,
    /// Deferred inserts of the batch currently being ingested:
    /// `(scan node, base tuple, fresh flag, key hash)` in arrival order.
    /// The hash is computed once at ingest and rides along so the batch
    /// kernel never rehashes a key.
    batch_run: Vec<(NodeId, Arc<BaseTuple>, bool, u64)>,
    /// Keys present in the deferred run (expiry-commutation check).
    batch_run_keys: FxHashSet<Key>,
    /// Per-node delta buffers reused across batch flushes (indexed by
    /// `NodeId`). Each entry carries the probe-key hash of its tuple —
    /// under the shared-attribute model a joined tuple is probed with the
    /// same key (hence hash) as the delta tuple that produced it.
    /// Capacities are capped after each flush (see `DELTA_SCRATCH_CAP`).
    batch_deltas: Vec<Vec<(Tuple, bool, u64)>>,
    /// Reusable scratch of the columnar execution path (hash columns,
    /// per-node SoA deltas; see [`crate::columnar`]).
    pub(crate) col: crate::columnar::ColScratch,
    /// Per-kernel time/element counters of the columnar path (not part of
    /// [`Metrics`]: wall-clock timings are non-deterministic, and
    /// `Metrics` must stay comparable across equivalent runs).
    pub kernels: crate::columnar::KernelStats,
    /// Query output.
    pub output: OutputSink,
    /// Execution counters.
    pub metrics: Metrics,
    /// Per-state spill config applied by [`Pipeline::enable_spill`];
    /// remembered so plan replacements re-tier fresh states.
    pub(crate) spill_cfg: Option<crate::spill::SpillConfig>,
}

impl Pipeline {
    /// Compile `spec` against `catalog` and build an empty pipeline.
    pub fn new(catalog: Catalog, spec: &PlanSpec) -> Result<Self> {
        let plan = Plan::compile(&catalog, spec)?;
        let n = catalog.len();
        let has_time_windows = !catalog.all_count_windows();
        Ok(Pipeline {
            catalog,
            plan,
            rings: vec![Default::default(); n],
            fresh: vec![Default::default(); n],
            next_seq: 0,
            last_ts: 0,
            watermark: 0,
            lateness: None,
            has_time_windows,
            last_transition_seq: 0,
            pending_items: 0,
            expired_scratch: Vec::new(),
            probe_scratch: Vec::new(),
            batch_run: Vec::new(),
            batch_run_keys: FxHashSet::default(),
            batch_deltas: Vec::new(),
            col: Default::default(),
            kernels: Default::default(),
            output: OutputSink::new(),
            metrics: Metrics::new(),
            spill_cfg: None,
        })
    }

    // ----- accessors -----

    /// The stream catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The running plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Mutable access to the running plan (migration layer).
    pub fn plan_mut(&mut self) -> &mut Plan {
        &mut self.plan
    }

    /// Sequence number the next arrival will get.
    pub fn next_seq(&self) -> SeqNo {
        self.next_seq
    }

    /// Align this pipeline's sequence counter with another's. The Parallel
    /// Track strategy spawns a second pipeline mid-stream and both must
    /// assign identical sequence numbers to the same arrivals so lineages
    /// (the duplicate-elimination identity) agree across plans.
    pub fn set_next_seq(&mut self, seq: SeqNo) {
        self.next_seq = seq;
        self.last_transition_seq = self.last_transition_seq.min(seq);
    }

    /// Sequence number recorded at the most recent plan transition.
    pub fn last_transition_seq(&self) -> SeqNo {
        self.last_transition_seq
    }

    /// Current window contents of a stream (oldest first), with the
    /// timestamp each tuple arrived at.
    pub fn window_of(&self, s: StreamId) -> &std::collections::VecDeque<(u64, Arc<BaseTuple>)> {
        &self.rings[s.0 as usize]
    }

    /// Monotonic work counter used for latency measurements.
    pub fn work_now(&self) -> u64 {
        self.metrics.total_work()
    }

    // ----- ingestion -----

    /// Accept one arrival: assigns a sequence number, classifies freshness,
    /// slides the stream's window (enqueuing the expiry removal first), and
    /// enqueues the insert at the stream's scan node. Does **not** run the
    /// pipeline; call [`Pipeline::run_with`] (or use a strategy executor).
    ///
    /// One arrival must be fully processed before the next is ingested
    /// (enforced): with symmetric joins, batching arrivals would let a
    /// tuple probe partners that arrived *after* it, changing the query's
    /// answer relative to the arrival order.
    pub fn ingest(&mut self, stream: StreamId, key: Key, payload: u64) -> Result<()> {
        let ts = self.last_ts.max(self.next_seq);
        self.ingest_at(stream, key, payload, ts)
    }

    /// [`Pipeline::ingest`] with an explicit arrival timestamp (drives
    /// time-based windows; must be monotonically non-decreasing). For
    /// count-windowed streams the timestamp is recorded but irrelevant.
    ///
    /// Time-window expiry: every tuple whose age reaches the stream's
    /// window duration at this timestamp is removed — possibly several per
    /// arrival, possibly none.
    pub fn ingest_at(&mut self, stream: StreamId, key: Key, payload: u64, ts: u64) -> Result<()> {
        if self.pending_items > 0 {
            return Err(JiscError::InvalidConfig(
                "previous arrival not yet processed: run the pipeline before \
                 ingesting the next tuple"
                    .into(),
            ));
        }
        let ts = match self.admit_ts(ts)? {
            Some(ts) => ts,
            None => return Ok(()), // late tuple dropped, accounted in metrics
        };
        self.last_ts = ts;
        let scan = self
            .plan
            .scan_of(stream)
            .ok_or_else(|| JiscError::UnknownStream(format!("{stream}")))?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.metrics.tuples_in += 1;

        // Slide windows before recording the new arrival, so the expiring
        // tuples' freshness reflects arrivals strictly before this one.
        // Count windows slide only on their own stream's arrivals; time
        // windows are driven by the clock, so *every* time-windowed stream
        // is aged on every arrival.
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        if self.has_time_windows {
            for i in 0..self.catalog.len() {
                let s = StreamId(i as u16);
                match self.catalog.window_spec(s) {
                    WindowSpec::Count(w) => {
                        if s != stream {
                            continue;
                        }
                        let ring = &mut self.rings[i];
                        if ring.len() == w {
                            expired.push(ring.pop_front().expect("non-empty ring").1);
                        }
                    }
                    WindowSpec::Time(d) => {
                        // A tuple is inside the window while `ts - arrival < d`.
                        let ring = &mut self.rings[i];
                        while ring
                            .front()
                            .is_some_and(|(at, _)| ts.saturating_sub(*at) >= d)
                        {
                            expired.push(ring.pop_front().expect("non-empty ring").1);
                        }
                    }
                }
            }
        } else if let WindowSpec::Count(w) = self.catalog.window_spec(stream) {
            // Fast path: count windows slide only the arriving stream.
            let ring = &mut self.rings[stream.0 as usize];
            if ring.len() == w {
                expired.push(ring.pop_front().expect("non-empty ring").1);
            }
        }
        for old in expired.drain(..) {
            let old_scan = self
                .plan
                .scan_of(old.stream)
                .ok_or_else(|| JiscError::UnknownStream(format!("{}", old.stream)))?;
            let old_fresh = self.fresh[old.stream.0 as usize]
                .get(&old.key)
                .is_none_or(|&s| s < self.last_transition_seq);
            self.pending_items += 1;
            self.plan.node_mut(old_scan).queue.push_back(QueueItem {
                from: None,
                payload: Payload::Remove {
                    stream: old.stream,
                    seq: old.seq,
                    key: old.key,
                    fresh: old_fresh,
                },
            });
        }
        self.expired_scratch = expired;

        let prev = self.fresh[stream.0 as usize].insert(key, seq);
        let fresh = prev.is_none_or(|s| s < self.last_transition_seq);
        let base = Arc::new(BaseTuple::new(stream, seq, key, payload));
        self.rings[stream.0 as usize].push_back((ts, Arc::clone(&base)));
        self.pending_items += 1;
        self.plan.node_mut(scan).queue.push_back(QueueItem {
            from: None,
            payload: Payload::Insert {
                tuple: Tuple::Base(base),
                fresh,
            },
        });
        Ok(())
    }

    /// [`Pipeline::ingest`] by stream name.
    pub fn ingest_named(&mut self, stream: &str, key: Key, payload: u64) -> Result<()> {
        let id = self.catalog.id(stream)?;
        self.ingest(id, key, payload)
    }

    /// Is a (hypothetical) arrival with `key` on `stream` fresh right now
    /// (Definition 2)? O(1), as in §4.4.
    pub fn is_fresh(&self, stream: StreamId, key: Key) -> bool {
        self.fresh[stream.0 as usize]
            .get(&key)
            .is_none_or(|&s| s < self.last_transition_seq)
    }

    // ----- execution -----

    /// Drain all queues to quiescence under the given semantics.
    pub fn run_with(&mut self, sem: &mut impl Semantics) {
        // Bottom-up passes: children drain before parents, so one pass
        // usually reaches quiescence; the pending-item counter makes both
        // the outer loop and the per-node scans cheap to terminate.
        while self.pending_items > 0 {
            for i in 0..self.plan.topo().len() {
                let id = self.plan.topo()[i];
                while let Some(item) = self.plan.node_mut(id).queue.pop_front() {
                    self.pending_items -= 1;
                    sem.process(self, id, item);
                }
            }
        }
    }

    /// Drain all queues under the default (plain pipelined) semantics.
    pub fn run(&mut self) {
        self.run_with(&mut DefaultSemantics);
    }

    /// Ingest then immediately run with the given semantics.
    pub fn push_with(
        &mut self,
        sem: &mut impl Semantics,
        stream: StreamId,
        key: Key,
        payload: u64,
    ) -> Result<()> {
        self.ingest(stream, key, payload)?;
        self.run_with(sem);
        Ok(())
    }

    /// Ingest then immediately run with default semantics.
    pub fn push(&mut self, stream: StreamId, key: Key, payload: u64) -> Result<()> {
        self.push_with(&mut DefaultSemantics, stream, key, payload)
    }

    /// Ingest at an explicit timestamp, then run with the given semantics.
    pub fn push_at_with(
        &mut self,
        sem: &mut impl Semantics,
        stream: StreamId,
        key: Key,
        payload: u64,
        ts: u64,
    ) -> Result<()> {
        self.ingest_at(stream, key, payload, ts)?;
        self.run_with(sem);
        Ok(())
    }

    /// Ingest at an explicit timestamp, then run with default semantics.
    pub fn push_at(&mut self, stream: StreamId, key: Key, payload: u64, ts: u64) -> Result<()> {
        self.push_at_with(&mut DefaultSemantics, stream, key, payload, ts)
    }

    // ----- batched ingestion -----

    /// Process a whole [`TupleBatch`] to quiescence under the given
    /// semantics, equivalent (by output lineage multiset) to pushing its
    /// tuples one at a time in order.
    ///
    /// On [batchable](Plan::batchable) plans — scans and equi-joins — the
    /// batch executes in two phases per flush: every batch tuple probes
    /// the operator states *as they were before the batch* (plus an
    /// explicit intra-batch pairing term), and only then are the batch's
    /// delta tuples installed into the states. This amortizes queue and
    /// dispatch overhead across the batch while producing exactly the
    /// per-tuple result: the symmetric-join identity
    /// `(L+dl)(R+dr) − LR = dl·R + L·dr + dl·dr` accounts every join pair
    /// once. Window expiries landing mid-batch commute with pending
    /// deferred inserts only when every expiring key is absent from the
    /// run **and** no state is incomplete (mid-migration); otherwise the
    /// run is flushed first, degrading toward per-tuple execution but
    /// never changing the answer. Non-batchable plans (set-difference,
    /// aggregation, non-`KeyEq` theta joins) and batches of one take the
    /// per-tuple path directly.
    ///
    /// A `None` timestamp on a batch tuple means "default clock" (same
    /// rule as [`Pipeline::ingest`]); a `Some(seq)` pins the arrival's
    /// sequence number via [`Pipeline::set_next_seq`] (sharded routing).
    pub fn push_batch_with(&mut self, sem: &mut impl Semantics, batch: &TupleBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if batch.len() < 2 || !self.plan.batchable() {
            for t in batch.items() {
                if let Some(seq) = t.seq {
                    self.set_next_seq(seq);
                }
                let ts = match t.ts {
                    Some(ts) => ts,
                    None => self.last_ts.max(self.next_seq),
                };
                self.push_at_with(sem, t.stream, t.key, t.payload, ts)?;
            }
            return Ok(());
        }
        if self.pending_items > 0 {
            return Err(JiscError::InvalidConfig(
                "previous arrival not yet processed: run the pipeline before \
                 ingesting the next batch"
                    .into(),
            ));
        }
        debug_assert!(self.batch_run.is_empty());
        for t in batch.items() {
            if let Err(e) = self.ingest_deferred(sem, t) {
                // Leave the pipeline in the state a serial prefix of the
                // batch would have produced.
                self.flush_run(sem);
                return Err(e);
            }
        }
        self.flush_run(sem);
        Ok(())
    }

    /// [`Pipeline::push_batch_with`] under the default semantics.
    pub fn push_batch(&mut self, batch: &TupleBatch) -> Result<()> {
        self.push_batch_with(&mut DefaultSemantics, batch)
    }

    /// Ingest one batch tuple without enqueuing its insert: sequence
    /// numbering, window slide (with the expiry-commutation rule), and
    /// freshness classification happen now; the insert itself is deferred
    /// into `batch_run` until [`Pipeline::flush_run`].
    pub(crate) fn ingest_deferred(
        &mut self,
        sem: &mut impl Semantics,
        t: &BatchedTuple,
    ) -> Result<()> {
        if let Some(seq) = t.seq {
            self.set_next_seq(seq);
        }
        let ts = match t.ts {
            Some(ts) => ts,
            None => self.last_ts.max(self.next_seq),
        };
        let ts = match self.admit_ts(ts)? {
            Some(ts) => ts,
            None => return Ok(()), // late tuple dropped, accounted in metrics
        };
        self.last_ts = ts;
        let scan = self
            .plan
            .scan_of(t.stream)
            .ok_or_else(|| JiscError::UnknownStream(format!("{}", t.stream)))?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.metrics.tuples_in += 1;

        // Window slide, identical to [`Pipeline::ingest_at`].
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        if self.has_time_windows {
            for i in 0..self.catalog.len() {
                let s = StreamId(i as u16);
                match self.catalog.window_spec(s) {
                    WindowSpec::Count(w) => {
                        if s != t.stream {
                            continue;
                        }
                        let ring = &mut self.rings[i];
                        if ring.len() == w {
                            expired.push(ring.pop_front().expect("non-empty ring").1);
                        }
                    }
                    WindowSpec::Time(d) => {
                        let ring = &mut self.rings[i];
                        while ring
                            .front()
                            .is_some_and(|(at, _)| ts.saturating_sub(*at) >= d)
                        {
                            expired.push(ring.pop_front().expect("non-empty ring").1);
                        }
                    }
                }
            }
        } else if let WindowSpec::Count(w) = self.catalog.window_spec(t.stream) {
            let ring = &mut self.rings[t.stream.0 as usize];
            if ring.len() == w {
                expired.push(ring.pop_front().expect("non-empty ring").1);
            }
        }
        if !expired.is_empty() {
            // Removals of key k commute with pending deferred inserts of
            // keys ≠ k only on equi-joins over *complete* states: the
            // removed entry cannot match any pending insert, and no
            // completion bookkeeping can change a Remove's forwarding
            // decision. Any expiring key in the run, or any incomplete
            // state anywhere, forces a flush first.
            let commute = expired
                .iter()
                .all(|old| !self.batch_run_keys.contains(&old.key))
                && !self.any_state_incomplete();
            if !commute {
                self.flush_run(sem);
            }
            for old in expired.drain(..) {
                let old_scan = self
                    .plan
                    .scan_of(old.stream)
                    .ok_or_else(|| JiscError::UnknownStream(format!("{}", old.stream)))?;
                let old_fresh = self.fresh[old.stream.0 as usize]
                    .get(&old.key)
                    .is_none_or(|&s| s < self.last_transition_seq);
                self.pending_items += 1;
                self.plan.node_mut(old_scan).queue.push_back(QueueItem {
                    from: None,
                    payload: Payload::Remove {
                        stream: old.stream,
                        seq: old.seq,
                        key: old.key,
                        fresh: old_fresh,
                    },
                });
            }
            self.expired_scratch = expired;
            self.run_with(sem);
        } else {
            self.expired_scratch = expired;
        }

        let prev = self.fresh[t.stream.0 as usize].insert(t.key, seq);
        let fresh = prev.is_none_or(|s| s < self.last_transition_seq);
        let base = Arc::new(BaseTuple::new(t.stream, seq, t.key, t.payload));
        self.rings[t.stream.0 as usize].push_back((ts, Arc::clone(&base)));
        self.batch_run.push((scan, base, fresh, hash_key(t.key)));
        self.batch_run_keys.insert(t.key);
        Ok(())
    }

    /// Is any state in the plan marked incomplete (mid-migration)?
    pub(crate) fn any_state_incomplete(&self) -> bool {
        !self.all_states_complete()
    }

    /// Is every operator state complete (no in-flight migration debt)?
    pub fn all_states_complete(&self) -> bool {
        self.plan
            .ids()
            .all(|i| self.plan.node(i).state.is_complete())
    }

    /// Execute the deferred run: compute every node's delta against the
    /// pre-run states (phase I), then install all deltas and emit at the
    /// root (phase II). The strict phase separation is what keeps JISC
    /// completion sound mid-batch — completion triggered by
    /// [`Semantics::before_probe`] reads only pre-run child states, so it
    /// materializes exactly the old-only combinations, while every delta
    /// entry contains at least one batch constituent; the two sets are
    /// lineage-disjoint and nothing is double-counted.
    pub(crate) fn flush_run(&mut self, sem: &mut impl Semantics) {
        if self.batch_run.is_empty() {
            return;
        }
        self.batch_run_keys.clear();
        if self.batch_run.len() == 1 {
            let (scan, base, fresh, _) = self.batch_run.pop().expect("non-empty run");
            self.enqueue(
                scan,
                QueueItem {
                    from: None,
                    payload: Payload::Insert {
                        tuple: Tuple::Base(base),
                        fresh,
                    },
                },
            );
            self.run_with(sem);
            return;
        }
        let mut deltas = std::mem::take(&mut self.batch_deltas);
        for d in &mut deltas {
            d.clear();
        }
        deltas.resize_with(self.plan.len(), Vec::new);
        for (scan, base, fresh, h) in self.batch_run.drain(..) {
            deltas[scan.0 as usize].push((Tuple::Base(base), fresh, h));
        }

        // Phase I: compute join deltas bottom-up against pre-run states.
        // The arena allocates children before parents, so a node's delta
        // slot always sits above both children's in the buffer.
        //
        // Equi-join probes run through the batch kernel: every delta tuple
        // carries its pre-computed key hash, and the index lines the probe
        // `PREFETCH_DIST` items ahead will touch are prefetched while the
        // current probe's matches are materialized, hiding the cache-miss
        // latency of out-of-cache state tables behind useful work.
        let mut buf = self.take_probe_scratch();
        for i in 0..self.plan.topo().len() {
            let id = self.plan.topo()[i];
            let node = self.plan.node(id);
            let pred = match node.op {
                OpKind::HashJoin => None,
                OpKind::NljJoin(p) => Some(p),
                _ => continue,
            };
            let (l, r) = (
                node.left.expect("binary node has left child"),
                node.right.expect("binary node has right child"),
            );
            let (li, ri) = (l.0 as usize, r.0 as usize);
            let idx = id.0 as usize;
            debug_assert!(li < idx && ri < idx, "children precede parent in arena");
            let (lower, upper) = deltas.split_at_mut(idx);
            let out = &mut upper[0];
            // Batch-aware just-in-time fault-back (tiered states): fault
            // every cold chain this direction's delta will probe with one
            // sequential read per touched segment, so the probe loop below
            // runs against a hot-only store — the JISC completion
            // discipline applied to the disk tier.
            if self.plan.node(r).state.cold_entries() > 0 {
                match pred {
                    Some(_) => self.plan.node_mut(r).state.fault_in_all(&mut self.metrics),
                    None => self.plan.node_mut(r).state.fault_in_keys(
                        lower[li].iter().map(|(t, _, _)| t.key()),
                        &mut self.metrics,
                    ),
                };
            }
            // Left delta × pre-run right state.
            let prefetch_r = self.plan.node(r).state.len() >= PREFETCH_MIN_STATE;
            for di in 0..lower[li].len() {
                if prefetch_r {
                    if let Some((_, _, hn)) = lower[li].get(di + PREFETCH_DIST) {
                        self.plan.node(r).state.prefetch(*hn);
                    }
                }
                let (t, f, h) = lower[li][di].clone();
                let key = t.key();
                sem.before_probe(self, r, key);
                buf.clear();
                match pred {
                    Some(pr) => self.scan_theta_state_into(r, pr, key, false, &mut buf),
                    None => self.lookup_state_into_hashed(r, h, key, &mut buf),
                }
                for m in buf.drain(..) {
                    out.push((Tuple::joined(key, t.clone(), m), f, h));
                }
            }
            // Same batch-aware prefault for the other direction.
            if self.plan.node(l).state.cold_entries() > 0 {
                match pred {
                    Some(_) => self.plan.node_mut(l).state.fault_in_all(&mut self.metrics),
                    None => self.plan.node_mut(l).state.fault_in_keys(
                        lower[ri].iter().map(|(t, _, _)| t.key()),
                        &mut self.metrics,
                    ),
                };
            }
            // Pre-run left state × right delta.
            let prefetch_l = self.plan.node(l).state.len() >= PREFETCH_MIN_STATE;
            for di in 0..lower[ri].len() {
                if prefetch_l {
                    if let Some((_, _, hn)) = lower[ri].get(di + PREFETCH_DIST) {
                        self.plan.node(l).state.prefetch(*hn);
                    }
                }
                let (t, f, h) = lower[ri][di].clone();
                let key = t.key();
                sem.before_probe(self, l, key);
                buf.clear();
                match pred {
                    Some(pr) => self.scan_theta_state_into(l, pr, key, true, &mut buf),
                    None => self.lookup_state_into_hashed(l, h, key, &mut buf),
                }
                for m in buf.drain(..) {
                    out.push((Tuple::joined(key, m.clone(), t.clone()), f, h));
                }
            }
            // Intra-batch term: left delta × right delta on key equality
            // (batchable theta joins are `KeyEq`, so key equality is the
            // join condition for both operator kinds). The result carries
            // the fresh flag of whichever side's tuple is the later
            // arrival — the item that would have triggered the join in
            // per-tuple execution. Pairing is keyed through a one-shot
            // index over the right delta instead of a nested loop: the
            // loop was O(|δl|·|δr|) and dominated large-batch flushes
            // (the B=256 regression); keying keeps it O(|δl|+|δr|+pairs)
            // while emitting in exactly the nested loop's order.
            let (la, ra) = (&lower[li], &lower[ri]);
            if !la.is_empty() && !ra.is_empty() {
                if la.len() * ra.len() > INTRA_PAIR_KEYED_MIN {
                    let mut by_key: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
                    for (j, (b, _, _)) in ra.iter().enumerate() {
                        by_key.entry(b.key()).or_default().push(j as u32);
                    }
                    for (a, fa, h) in la {
                        if let Some(js) = by_key.get(&a.key()) {
                            for &j in js {
                                let (b, fb, _) = &ra[j as usize];
                                let f = if a.max_seq() > b.max_seq() { *fa } else { *fb };
                                out.push((Tuple::joined(a.key(), a.clone(), b.clone()), f, *h));
                            }
                        }
                    }
                } else {
                    for (a, fa, h) in la {
                        for (b, fb, _) in ra {
                            if a.key() == b.key() {
                                let f = if a.max_seq() > b.max_seq() { *fa } else { *fb };
                                out.push((Tuple::joined(a.key(), a.clone(), b.clone()), f, *h));
                            }
                        }
                    }
                }
            }
        }
        self.recycle_probe_scratch(buf);

        // Phase II: install every delta into its own node's state (hash
        // rides along, so installs never rehash); the root's delta is the
        // batch's query output.
        for i in 0..self.plan.topo().len() {
            let id = self.plan.topo()[i];
            let idx = id.0 as usize;
            if deltas[idx].is_empty() {
                continue;
            }
            let is_root = self.plan.node(id).parent.is_none();
            let mut d = std::mem::take(&mut deltas[idx]);
            for (t, _fresh, h) in d.drain(..) {
                if is_root {
                    self.state_insert_hashed(id, h, t.clone());
                    self.emit(t);
                } else {
                    self.state_insert_hashed(id, h, t);
                }
            }
            deltas[idx] = d;
        }
        // Large batches with selective joins can balloon a delta buffer;
        // keep the reusable capacity bounded so one outlier batch does not
        // pin its high-water allocation forever.
        for d in &mut deltas {
            if d.capacity() > DELTA_SCRATCH_CAP {
                d.shrink_to(DELTA_SCRATCH_CAP);
            }
        }
        self.batch_deltas = deltas;
    }

    // ----- punctuation -----

    /// Advance the watermark to `ts`: expire every tuple whose age reaches
    /// its stream's time window at `ts`, exactly as a serial
    /// [`Pipeline::ingest_at`] sequence reaching `ts` would, and drain the
    /// resulting removals to quiescence. Count windows are arrival-driven
    /// and unaffected.
    pub fn advance_watermark_with(&mut self, sem: &mut impl Semantics, ts: u64) -> Result<()> {
        if self.pending_items > 0 {
            return Err(JiscError::InvalidConfig(
                "previous arrival not yet processed: run the pipeline before \
                 advancing the watermark"
                    .into(),
            ));
        }
        if ts < self.last_ts {
            return Err(JiscError::InvalidConfig(format!(
                "timestamps must be monotonic: {ts} < {}",
                self.last_ts
            )));
        }
        self.last_ts = ts;
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        for i in 0..self.catalog.len() {
            if let WindowSpec::Time(d) = self.catalog.window_spec(StreamId(i as u16)) {
                let ring = &mut self.rings[i];
                while ring
                    .front()
                    .is_some_and(|(at, _)| ts.saturating_sub(*at) >= d)
                {
                    expired.push(ring.pop_front().expect("non-empty ring").1);
                }
            }
        }
        for old in expired.drain(..) {
            let old_scan = self
                .plan
                .scan_of(old.stream)
                .ok_or_else(|| JiscError::UnknownStream(format!("{}", old.stream)))?;
            let old_fresh = self.fresh[old.stream.0 as usize]
                .get(&old.key)
                .is_none_or(|&s| s < self.last_transition_seq);
            self.pending_items += 1;
            self.plan.node_mut(old_scan).queue.push_back(QueueItem {
                from: None,
                payload: Payload::Remove {
                    stream: old.stream,
                    seq: old.seq,
                    key: old.key,
                    fresh: old_fresh,
                },
            });
        }
        self.expired_scratch = expired;
        self.run_with(sem);
        Ok(())
    }

    /// Apply an event-time watermark: "no arrival below `ts` will follow".
    ///
    /// Unlike [`Pipeline::advance_watermark_with`] — which treats a
    /// regressing `ts` as a producer bug — a watermark is monotone and
    /// idempotent by construction: a stale or repeated announcement is an
    /// accepted no-op. That is what lets several sources with independent
    /// clocks (or a router min-aligning over per-stream frontiers)
    /// re-announce frontiers freely without coordinating. Where the
    /// watermark does advance past the arrival clock it has exactly the
    /// expiry effect of [`Pipeline::advance_watermark_with`].
    pub fn apply_watermark_with(&mut self, sem: &mut impl Semantics, ts: u64) -> Result<()> {
        if ts <= self.watermark {
            return Ok(()); // stale or repeated: idempotent no-op
        }
        self.watermark = ts;
        if ts < self.last_ts {
            // Behind the arrival clock: every expiry it could trigger has
            // already happened. Record the frontier and move on.
            return Ok(());
        }
        self.advance_watermark_with(sem, ts)
    }

    /// Highest watermark ever applied (0 if none).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The arrival clock: timestamp of the most recent arrival (or the
    /// highest expiry/watermark applied past it).
    pub fn last_ts(&self) -> u64 {
        self.last_ts
    }

    // ----- lateness policy -----

    /// Install (or clear, with `None`) the lateness policy applied to
    /// out-of-order arrivals. With no policy a regressing timestamp is an
    /// error; see [`crate::lateness`] for the policy semantics and why
    /// this in-place form is best-effort (exactness-sensitive callers put
    /// a [`crate::lateness::LatenessGate`] in front instead).
    pub fn set_lateness_policy(&mut self, policy: Option<crate::lateness::LatenessPolicy>) {
        self.lateness = policy;
    }

    // ----- memory-budgeted tiered state -----

    /// Put every hash-layout state of the plan under a shared memory
    /// budget: `cfg.budget_bytes` is split evenly across them, and each
    /// state spills its oldest entries to compressed on-disk cold segments
    /// under `cfg.dir` past its share, faulting chains back just-in-time
    /// when probed (see [`crate::spill`]). List (theta) states stay
    /// resident — they are probe-scanned wholesale, so tiering them would
    /// fault everything back on every probe. The config is remembered:
    /// states created by later plan replacements are tiered on arrival.
    pub fn enable_spill(&mut self, cfg: crate::spill::SpillConfig) -> Result<()> {
        let ids: Vec<NodeId> = self.plan.ids().collect();
        let hash_states = ids
            .iter()
            .filter(|&&i| self.plan.node(i).state.kind() == crate::state::StoreKind::Hash)
            .count()
            .max(1);
        let per = crate::spill::SpillConfig {
            budget_bytes: (cfg.budget_bytes / hash_states).max(1),
            ..cfg.clone()
        };
        for id in ids {
            let st = &mut self.plan.node_mut(id).state;
            if st.kind() == crate::state::StoreKind::Hash && !st.spill_enabled() {
                st.enable_spill(per.clone())?;
            }
        }
        self.spill_cfg = Some(per);
        Ok(())
    }

    /// Is a memory budget active on this pipeline's states?
    pub fn spill_enabled(&self) -> bool {
        self.spill_cfg.is_some()
    }

    /// Aggregated cold-tier occupancy across all states (`None` when no
    /// budget is active).
    pub fn spill_stats(&self) -> Option<crate::spill::SpillStats> {
        self.spill_cfg.as_ref()?;
        let mut total = crate::spill::SpillStats::default();
        for id in self.plan.ids() {
            if let Some(s) = self.plan.node(id).state.spill_stats() {
                total.entries += s.entries;
                total.keys += s.keys;
                total.segments += s.segments;
                total.disk_bytes += s.disk_bytes;
            }
        }
        Some(total)
    }

    /// Estimated hot-tier bytes across all states (the figure the budget
    /// governs; see [`crate::slab::HOT_ENTRY_EST_BYTES`]).
    pub fn hot_bytes(&self) -> usize {
        self.plan
            .ids()
            .map(|i| self.plan.node(i).state.hot_bytes())
            .sum()
    }

    /// Merged wall-clock fault-back latency distribution across all tiered
    /// states (`None` when no budget is active).
    pub fn fault_latency(&self) -> Option<jisc_telemetry::HistogramSnapshot> {
        self.spill_cfg.as_ref()?;
        let mut merged = jisc_telemetry::HistogramSnapshot::empty();
        for id in self.plan.ids() {
            if let Some(s) = self.plan.node(id).state.fault_latency() {
                merged.merge(&s);
            }
        }
        Some(merged)
    }

    /// The active lateness policy, if any.
    pub fn lateness_policy(&self) -> Option<crate::lateness::LatenessPolicy> {
        self.lateness
    }

    /// Admit, clamp, or reject an arrival timestamp against the clock
    /// under the active lateness policy. Returns the effective timestamp
    /// to ingest at, or `None` when the tuple is dropped as late (counted
    /// in `metrics.dropped_late`; callers skip the tuple entirely, so a
    /// seq pinned via `set_next_seq` is simply not consumed).
    fn admit_ts(&mut self, ts: u64) -> Result<Option<u64>> {
        if ts >= self.last_ts {
            return Ok(Some(ts));
        }
        match self.lateness {
            None => Err(JiscError::InvalidConfig(format!(
                "timestamps must be monotonic: {ts} < {}",
                self.last_ts
            ))),
            Some(crate::lateness::LatenessPolicy::Drop) => {
                self.metrics.dropped_late += 1;
                Ok(None)
            }
            Some(crate::lateness::LatenessPolicy::AdmitWithinBound { bound }) => {
                if self.last_ts - ts <= bound {
                    // Clamp to the clock: the tuple joins the present. Its
                    // window placement differs from a perfectly ordered
                    // run's — accounted, best-effort degradation.
                    self.metrics.late_admitted += 1;
                    Ok(Some(self.last_ts))
                } else {
                    self.metrics.dropped_late += 1;
                    Ok(None)
                }
            }
        }
    }

    // ----- helpers used by operator semantics -----

    /// Probe node `n`'s state for `key`, appending matches to `out`
    /// (clones matches; `Arc` bumps). This is the single state-probe entry
    /// point: hot paths pass the recycled
    /// [`Pipeline::take_probe_scratch`] buffer, cold paths a local `Vec`.
    pub fn lookup_state_into(&mut self, n: NodeId, key: Key, out: &mut Vec<Tuple>) {
        let node = self.plan.node_mut(n);
        node.state.fault_in_key(key, &mut self.metrics);
        node.state.lookup_into(key, &mut self.metrics, out);
    }

    /// [`Pipeline::lookup_state_into`] with the key's hash already
    /// computed — the batch kernel and state completion pre-hash once per
    /// tuple. Accounting is identical.
    pub fn lookup_state_into_hashed(&mut self, n: NodeId, h: u64, key: Key, out: &mut Vec<Tuple>) {
        let node = self.plan.node_mut(n);
        node.state.fault_in_key(key, &mut self.metrics);
        node.state
            .for_each_match_hashed(h, key, &mut self.metrics, |t| out.push(t.clone()));
    }

    /// Prefetch the index lines a probe of node `n`'s state with hash `h`
    /// will touch (no-op for list states).
    #[inline]
    pub fn state_prefetch(&self, n: NodeId, h: u64) {
        self.plan.node(n).state.prefetch(h);
    }

    /// Number of entries matching `key` in node `n`'s state, without
    /// materializing them.
    pub fn state_match_count(&mut self, n: NodeId, key: Key) -> usize {
        self.plan.node(n).state.match_count(key, &mut self.metrics)
    }

    /// Borrow the pipeline's reusable probe buffer (empty). Operator
    /// semantics cannot hold a `&Tuple` into a state while also mutating
    /// the pipeline, so probes clone matches into a buffer first; taking
    /// this one instead of allocating keeps the steady-state join path
    /// allocation-free. Return it with
    /// [`Pipeline::recycle_probe_scratch`] when drained. Nested takes are
    /// harmless: the inner take sees a fresh `Vec`, and recycling keeps
    /// whichever buffer has the larger capacity.
    pub fn take_probe_scratch(&mut self) -> Vec<Tuple> {
        let mut buf = std::mem::take(&mut self.probe_scratch);
        buf.clear();
        buf
    }

    /// Give back a buffer obtained from [`Pipeline::take_probe_scratch`].
    pub fn recycle_probe_scratch(&mut self, mut buf: Vec<Tuple>) {
        buf.clear();
        if buf.capacity() > self.probe_scratch.capacity() {
            self.probe_scratch = buf;
        }
    }

    /// Theta-scan node `n`'s state, appending matches to `out` — the
    /// single theta-probe entry point (see
    /// [`Pipeline::lookup_state_into`]).
    pub fn scan_theta_state_into(
        &mut self,
        n: NodeId,
        pred: Predicate,
        probe_key: Key,
        stored_is_left: bool,
        out: &mut Vec<Tuple>,
    ) {
        let node = self.plan.node_mut(n);
        node.state.fault_in_all(&mut self.metrics);
        node.state
            .scan_theta_into(pred, probe_key, stored_is_left, &mut self.metrics, out);
    }

    /// Does node `n`'s state contain `key`?
    pub fn state_contains_key(&mut self, n: NodeId, key: Key) -> bool {
        self.plan.node(n).state.contains_key(key, &mut self.metrics)
    }

    /// Insert into node `n`'s state.
    pub fn state_insert(&mut self, n: NodeId, t: Tuple) {
        self.plan.node_mut(n).state.insert(t, &mut self.metrics);
    }

    /// [`Pipeline::state_insert`] with the key's hash already computed.
    pub fn state_insert_hashed(&mut self, n: NodeId, h: u64, t: Tuple) {
        self.plan
            .node_mut(n)
            .state
            .insert_hashed(h, t, &mut self.metrics);
    }

    /// Insert into node `n`'s state unless an equal-lineage entry exists.
    pub fn state_insert_if_absent(&mut self, n: NodeId, t: Tuple) -> bool {
        self.plan
            .node_mut(n)
            .state
            .insert_if_absent(t, &mut self.metrics)
    }

    /// Remove entries containing a base tuple from node `n`'s state;
    /// returns the number removed.
    pub fn state_remove_containing(
        &mut self,
        n: NodeId,
        stream: StreamId,
        seq: SeqNo,
        key: Key,
    ) -> usize {
        self.plan
            .node_mut(n)
            .state
            .remove_containing(stream, seq, key, &mut self.metrics)
    }

    /// Remove entries whose lineage is a superset of `lin` from node `n`;
    /// returns the number removed.
    pub fn state_remove_superset(&mut self, n: NodeId, lin: &Lineage, key: Key) -> usize {
        self.plan
            .node_mut(n)
            .state
            .remove_superset(lin, key, &mut self.metrics)
    }

    /// Remove all entries stored under `key` from node `n`'s state;
    /// returns the number removed.
    pub fn state_remove_key(&mut self, n: NodeId, key: Key) -> usize {
        self.plan
            .node_mut(n)
            .state
            .remove_key(key, &mut self.metrics)
    }

    /// Remove one exact entry (by lineage) from node `n`'s state.
    pub fn state_remove_by_lineage(&mut self, n: NodeId, lin: &Lineage, key: Key) -> bool {
        self.plan
            .node_mut(n)
            .state
            .remove_by_lineage(lin, key, &mut self.metrics)
    }

    /// Does node `n`'s state contain any entry with a constituent older
    /// than `seq`? (Parallel Track discard check, §3.3.)
    pub fn state_has_entry_older_than(&mut self, n: NodeId, seq: SeqNo) -> bool {
        let node = self.plan.node_mut(n);
        node.state.fault_in_all(&mut self.metrics);
        node.state.has_entry_older_than(seq, &mut self.metrics)
    }

    /// Fault node `n`'s entire cold tier back into the hot tier (full-scan
    /// consumers: eager migration rebuilds, state iteration). Returns how
    /// many entries came back; a no-op without a cold tier.
    pub fn state_fault_in_all(&mut self, n: NodeId) -> usize {
        self.plan.node_mut(n).state.fault_in_all(&mut self.metrics)
    }

    /// Enqueue an item at node `n`.
    pub fn enqueue(&mut self, n: NodeId, item: QueueItem) {
        self.pending_items += 1;
        self.plan.node_mut(n).queue.push_back(item);
    }

    /// Forward a payload from `node` to its parent, or handle it at the top:
    /// inserts are emitted as query output; removals of emitted results are
    /// counted as retractions.
    pub fn forward_or_emit(&mut self, node: NodeId, payload: Payload) {
        match self.plan.node(node).parent {
            Some(parent) => self.enqueue(
                parent,
                QueueItem {
                    from: Some(node),
                    payload,
                },
            ),
            None => match payload {
                Payload::Insert { tuple, .. } => self.emit(tuple),
                Payload::Remove { .. }
                | Payload::RemoveEntry { .. }
                | Payload::SuppressKey { .. } => {
                    self.output.retractions += 1;
                }
            },
        }
    }

    /// Emit a result tuple at the root.
    pub fn emit(&mut self, t: Tuple) {
        self.metrics.tuples_out += 1;
        let work = self.metrics.total_work();
        self.output.emit(t, work);
    }

    // ----- migration support -----

    /// Record that a plan transition has been decided *now*: future arrivals
    /// are classified fresh/attempted relative to this instant (§4.4), and
    /// the sink is armed for a latency measurement (§6.3).
    pub fn mark_transition(&mut self) {
        self.last_transition_seq = self.next_seq;
        self.metrics.transitions += 1;
        let work = self.metrics.total_work();
        self.output.arm_latency(work);
    }

    /// Swap in a new plan, returning the old one. Queues of the old plan
    /// must be empty (safe transition, §4.1) — enforced, since discarding
    /// states under queued tuples breaks correctness.
    pub fn replace_plan(&mut self, new_plan: Plan) -> Plan {
        assert!(
            self.plan.queues_empty(),
            "safe transition requires empty input queues (buffer-clearing phase, §4.1)"
        );
        let old = std::mem::replace(&mut self.plan, new_plan);
        // Re-tier fresh hash states under the remembered budget (adopted
        // states carry their tier with them; see `adopt_states`).
        if let Some(per) = self.spill_cfg.clone() {
            for id in self.plan.ids().collect::<Vec<_>>() {
                let st = &mut self.plan.node_mut(id).state;
                if st.kind() == crate::state::StoreKind::Hash && !st.spill_enabled() {
                    st.enable_spill(per.clone())
                        .expect("fresh state has no cold tier to clobber");
                }
            }
        }
        old
    }

    /// Compile a spec against this pipeline's catalog (new-plan construction).
    pub fn compile(&self, spec: &PlanSpec) -> Result<Plan> {
        Plan::compile(&self.catalog, spec)
    }

    // ----- recovery support -----

    /// Capture the pipeline's base state — window rings, freshness maps,
    /// and clocks — for a recovery checkpoint. Operator states are *not*
    /// captured; the recovery layer rebuilds them from the restored scan
    /// states (see [`crate::snapshot::BaseStateSnapshot`]).
    ///
    /// Returns `None` when the pipeline cannot be snapshotted right now:
    /// mid-event (queued items or a deferred batch run in flight), or when
    /// the plan contains an aggregate (aggregate accumulators are not part
    /// of the base state, so a base snapshot could not restore them; such
    /// plans recover by full replay instead).
    pub fn snapshot_base_state(&self) -> Option<crate::snapshot::BaseStateSnapshot> {
        if self.pending_items > 0 || !self.batch_run.is_empty() {
            return None;
        }
        if self
            .plan
            .ids()
            .any(|i| matches!(self.plan.node(i).op, OpKind::Aggregate(_)))
        {
            return None;
        }
        Some(crate::snapshot::BaseStateSnapshot {
            rings: self
                .rings
                .iter()
                .map(|r| r.iter().cloned().collect())
                .collect(),
            fresh: self.fresh.clone(),
            next_seq: self.next_seq,
            last_ts: self.last_ts,
            last_transition_seq: self.last_transition_seq,
        })
    }

    /// Restore a snapshot into a freshly built pipeline (same catalog, the
    /// plan that was running when the snapshot was taken): window rings,
    /// freshness maps, and clocks are reinstated, and each windowed tuple
    /// is re-inserted into its stream's scan state directly — **without**
    /// enqueuing or emitting, so restoring produces no output. Operator
    /// states above the scans stay empty; the caller (the recovery layer)
    /// decides whether to complete them lazily or rebuild them eagerly.
    pub fn restore_base_state(&mut self, snap: &crate::snapshot::BaseStateSnapshot) -> Result<()> {
        if self.next_seq != 0 || self.pending_items > 0 || self.rings.iter().any(|r| !r.is_empty())
        {
            return Err(JiscError::InvalidConfig(
                "snapshots restore only into a freshly built pipeline".into(),
            ));
        }
        if snap.rings.len() != self.rings.len() || snap.fresh.len() != self.fresh.len() {
            return Err(JiscError::InvalidConfig(format!(
                "snapshot has {} streams, catalog has {}",
                snap.rings.len(),
                self.rings.len()
            )));
        }
        for (i, ring) in snap.rings.iter().enumerate() {
            let scan = self
                .plan
                .scan_of(StreamId(i as u16))
                .ok_or_else(|| JiscError::UnknownStream(format!("stream index {i}")))?;
            // Pre-size the scan state for the whole window so restore-replay
            // pays no growth rehashes (entry count bounds the key count).
            self.plan
                .node_mut(scan)
                .state
                .reserve(ring.len(), ring.len(), &mut self.metrics);
            for (ts, base) in ring {
                self.rings[i].push_back((*ts, Arc::clone(base)));
                self.state_insert(scan, Tuple::Base(Arc::clone(base)));
            }
        }
        self.fresh = snap.fresh.clone();
        self.next_seq = snap.next_seq;
        self.last_ts = snap.last_ts;
        self.last_transition_seq = snap.last_transition_seq;
        Ok(())
    }

    // ----- elastic range handover (repartitioning) -----

    /// Extract the base state of every key whose hash lies in `ranges` —
    /// the source half of an elastic range handover. Matching window-ring
    /// and freshness entries are removed and returned in ring (arrival)
    /// order, and the moved keys leave their streams' scan states. Derived
    /// (join) states and completion bookkeeping are the rescale layer's
    /// concern (`jisc-core`), which can see the whole plan. Unlike a
    /// snapshot restore this runs against a *live* pipeline; it only
    /// refuses mid-event (queued items or a deferred batch run in flight).
    pub fn extract_base_range(
        &mut self,
        ranges: &[jisc_common::KeyRange],
    ) -> Result<crate::snapshot::BaseRangeExport> {
        if self.pending_items > 0 || !self.batch_run.is_empty() {
            return Err(JiscError::InvalidConfig(
                "range extraction requires a quiescent pipeline".into(),
            ));
        }
        let in_range = |h: u64| ranges.iter().any(|r| r.contains(h));
        let mut rings = Vec::with_capacity(self.rings.len());
        let mut fresh = Vec::with_capacity(self.fresh.len());
        let mut keys = FxHashSet::default();
        for i in 0..self.rings.len() {
            let ring = &mut self.rings[i];
            let mut moved = Vec::new();
            let mut kept = std::collections::VecDeque::with_capacity(ring.len());
            for (ts, t) in ring.drain(..) {
                if in_range(hash_key(t.key)) {
                    keys.insert(t.key);
                    moved.push((ts, t));
                } else {
                    kept.push_back((ts, t));
                }
            }
            *ring = kept;
            rings.push(moved);
            let fmap = &mut self.fresh[i];
            let mut fmoved: Vec<(Key, SeqNo)> = Vec::new();
            fmap.retain(|&k, &mut s| {
                if in_range(hash_key(k)) {
                    fmoved.push((k, s));
                    false
                } else {
                    true
                }
            });
            fmoved.sort_unstable();
            for &(k, _) in &fmoved {
                keys.insert(k);
            }
            fresh.push(fmoved);
        }
        for (i, moved) in rings.iter().enumerate() {
            if moved.is_empty() {
                continue;
            }
            let scan = self
                .plan
                .scan_of(StreamId(i as u16))
                .ok_or_else(|| JiscError::UnknownStream(format!("stream index {i}")))?;
            let mut seen = FxHashSet::default();
            for (_, t) in moved {
                if seen.insert(t.key) {
                    self.state_remove_key(scan, t.key);
                }
            }
        }
        Ok(crate::snapshot::BaseRangeExport {
            ranges: ranges.to_vec(),
            rings,
            fresh,
            keys,
        })
    }

    /// Absorb an extracted base range into this *live* pipeline — the
    /// target half of an elastic range handover. Ring entries interleave
    /// with the resident window by `(timestamp, seq)` so oldest-first
    /// expiry order is preserved, freshness entries install (taking the max
    /// on the pathological duplicate), and each moved tuple enters its
    /// stream's scan state directly — without enqueuing or emitting, so
    /// absorbing produces no output. The moved keys' derived entries are
    /// **not** rebuilt here: the caller marks them as completion debt
    /// (just-in-time) or materializes them eagerly via the rescale layer.
    pub fn absorb_base_range(&mut self, export: &crate::snapshot::BaseRangeExport) -> Result<()> {
        if self.pending_items > 0 || !self.batch_run.is_empty() {
            return Err(JiscError::InvalidConfig(
                "range absorption requires a quiescent pipeline".into(),
            ));
        }
        if export.rings.len() != self.rings.len() || export.fresh.len() != self.fresh.len() {
            return Err(JiscError::InvalidConfig(format!(
                "range export has {} streams, catalog has {}",
                export.rings.len(),
                self.rings.len()
            )));
        }
        let mut max_ts = self.last_ts;
        for (i, moved) in export.rings.iter().enumerate() {
            if moved.is_empty() {
                continue;
            }
            let scan = self
                .plan
                .scan_of(StreamId(i as u16))
                .ok_or_else(|| JiscError::UnknownStream(format!("stream index {i}")))?;
            self.plan
                .node_mut(scan)
                .state
                .reserve(moved.len(), moved.len(), &mut self.metrics);
            // Merge the two (ts, seq)-sorted runs; the global sequence
            // number breaks timestamp ties deterministically.
            let resident: Vec<(u64, Arc<BaseTuple>)> = self.rings[i].drain(..).collect();
            let mut a = resident.into_iter().peekable();
            let mut b = moved.iter().cloned().peekable();
            loop {
                let take_a = match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) => (x.0, x.1.seq) <= (y.0, y.1.seq),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let next = if take_a { a.next() } else { b.next() };
                self.rings[i].push_back(next.expect("peeked"));
            }
            for (ts, t) in moved {
                max_ts = max_ts.max(*ts);
                self.state_insert(scan, Tuple::Base(Arc::clone(t)));
            }
        }
        for (i, fmoved) in export.fresh.iter().enumerate() {
            let fmap = &mut self.fresh[i];
            for &(k, s) in fmoved {
                let e = fmap.entry(k).or_insert(s);
                if *e < s {
                    *e = s;
                }
            }
        }
        // The target's clock may trail the moved tuples' stamps; advance it
        // so arrival monotonicity holds for the next push.
        self.last_ts = max_ts;
        Ok(())
    }

    /// Remove every derived entry at node `n` whose key hashes into
    /// `ranges`, returning the removed keys (the rescale layer widens the
    /// export's key set with them). Thin borrow-splitting wrapper so
    /// callers outside this crate reach the state and the metrics at once.
    pub fn state_extract_key_range(
        &mut self,
        n: NodeId,
        ranges: &[jisc_common::KeyRange],
    ) -> Vec<Key> {
        self.plan
            .node_mut(n)
            .state
            .extract_key_range(ranges, &mut self.metrics)
    }

    /// Move states out of `donor` into the running plan wherever signatures
    /// match, calling `classify` on each adopted state (with the signature)
    /// and leaving non-matching new-plan states untouched. Returns the
    /// adopted signatures and the donor states that found no home (the
    /// states a migration discards). Used by every migration strategy.
    pub fn adopt_states(
        &mut self,
        donor: &mut Plan,
        mut classify: impl FnMut(Signature, &mut State),
    ) -> AdoptionOutcome {
        let mut donated = donor.take_states();
        let mut adopted = Vec::new();
        for id in self.plan.ids().collect::<Vec<_>>() {
            let sig = self.plan.node(id).signature;
            if let Some(mut st) = donated.remove(&sig) {
                classify(sig, &mut st);
                self.plan.node_mut(id).state = st;
                adopted.push(sig);
                self.metrics.states_copied += 1;
            }
        }
        AdoptionOutcome {
            adopted,
            discarded: donated.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JoinStyle;

    fn pipeline(streams: &[&str], window: usize) -> Pipeline {
        let c = Catalog::uniform(streams, window).unwrap();
        let spec = PlanSpec::left_deep(streams, JoinStyle::Hash);
        Pipeline::new(c, &spec).unwrap()
    }

    #[test]
    fn two_way_join_produces_matches() {
        let mut p = pipeline(&["R", "S"], 100);
        p.push(StreamId(0), 1, 0).unwrap();
        p.push(StreamId(1), 1, 0).unwrap(); // matches r
        p.push(StreamId(1), 2, 0).unwrap(); // no match
        p.push(StreamId(0), 2, 0).unwrap(); // matches s2
        assert_eq!(p.output.count(), 2);
        assert!(p.output.is_duplicate_free());
        assert_eq!(p.metrics.tuples_in, 4);
        assert_eq!(p.metrics.tuples_out, 2);
    }

    #[test]
    fn three_way_join_needs_all_streams() {
        let mut p = pipeline(&["R", "S", "T"], 100);
        p.push(StreamId(0), 7, 0).unwrap();
        p.push(StreamId(1), 7, 0).unwrap();
        assert_eq!(p.output.count(), 0); // no T tuple yet
        p.push(StreamId(2), 7, 0).unwrap();
        assert_eq!(p.output.count(), 1);
        assert_eq!(p.output.log[0].arity(), 3);
    }

    #[test]
    fn window_expiry_removes_matches() {
        let mut p = pipeline(&["R", "S"], 2);
        p.push(StreamId(0), 1, 0).unwrap();
        p.push(StreamId(0), 2, 0).unwrap();
        p.push(StreamId(0), 3, 0).unwrap(); // expires r(key=1)
        p.push(StreamId(1), 1, 0).unwrap(); // r(1) gone: no match
        assert_eq!(p.output.count(), 0);
        p.push(StreamId(1), 3, 0).unwrap(); // r(3) still in window
        assert_eq!(p.output.count(), 1);
    }

    #[test]
    fn freshness_tracks_transitions() {
        let mut p = pipeline(&["R", "S"], 100);
        p.push(StreamId(0), 5, 0).unwrap();
        // No transition yet: everything arriving "after the most recent
        // transition" (seq 0) with a prior same-key arrival is attempted.
        assert!(!p.is_fresh(StreamId(0), 5));
        assert!(p.is_fresh(StreamId(0), 6));
        assert!(p.is_fresh(StreamId(1), 5)); // per-stream tracking
        p.mark_transition();
        assert!(p.is_fresh(StreamId(0), 5)); // old arrival predates transition
        p.push(StreamId(0), 5, 0).unwrap();
        assert!(!p.is_fresh(StreamId(0), 5));
    }

    #[test]
    fn duplicate_keys_join_cross_product() {
        let mut p = pipeline(&["R", "S"], 100);
        p.push(StreamId(0), 1, 0).unwrap();
        p.push(StreamId(0), 1, 1).unwrap();
        p.push(StreamId(1), 1, 0).unwrap(); // joins both r's
        assert_eq!(p.output.count(), 2);
    }

    #[test]
    fn ingest_unknown_stream_errors() {
        let mut p = pipeline(&["R", "S"], 10);
        assert!(p.ingest(StreamId(9), 1, 0).is_err());
        assert!(p.ingest_named("Z", 1, 0).is_err());
    }

    #[test]
    fn root_state_materializes_results() {
        let mut p = pipeline(&["R", "S"], 100);
        p.push(StreamId(0), 1, 0).unwrap();
        p.push(StreamId(1), 1, 0).unwrap();
        let root = p.plan().root();
        assert_eq!(p.plan().node(root).state.len(), 1);
    }

    #[test]
    fn latency_marker_records_on_next_emit() {
        let mut p = pipeline(&["R", "S"], 100);
        p.push(StreamId(0), 1, 0).unwrap();
        p.mark_transition();
        assert!(p.output.latency_pending());
        p.push(StreamId(1), 1, 0).unwrap();
        assert_eq!(p.output.latency_marks.len(), 1);
    }

    /// A pipeline under a budget so tight most state lives cold must emit
    /// exactly what the unbounded pipeline emits — probes fault chains back
    /// just-in-time, expiry drops cold stubs, nothing is lost or invented.
    #[test]
    fn tiny_budget_pipeline_matches_unbounded_output() {
        let scratch = crate::spill::ScratchDir::new("pipe-spill");
        let mut hot = pipeline(&["R", "S", "T"], 64);
        let mut tiered = pipeline(&["R", "S", "T"], 64);
        tiered
            .enable_spill(crate::spill::SpillConfig::new(2048, scratch.path()))
            .unwrap();
        let mut rng = jisc_common::SplitMix64::new(77);
        for _ in 0..600 {
            let s = StreamId((rng.next_u64() % 3) as u16);
            let k = rng.next_u64() % 24;
            hot.push(s, k, 0).unwrap();
            tiered.push(s, k, 0).unwrap();
        }
        assert!(
            tiered.metrics.spill_evictions > 0,
            "budget must actually spill: {:?}",
            tiered.spill_stats()
        );
        assert!(tiered.metrics.spill_faults > 0, "probes must fault back");
        assert_eq!(
            hot.output.lineage_multiset(),
            tiered.output.lineage_multiset(),
            "tiered output diverged from unbounded"
        );
        let text = crate::explain::explain(&tiered);
        assert!(text.contains("spill_evictions="), "footer: {text}");
        assert!(text.contains("cold_entries="), "footer: {text}");
    }
}
