//! A brute-force ground-truth evaluator for windowed n-way equi-joins and
//! set-difference chains.
//!
//! The oracle keeps each stream's window as a plain ring and, on every
//! arrival, recomputes the newly produced results directly from window
//! contents — no hashing, no states, no migration. Every engine in the
//! workspace (pipelined, JISC, Moving State, Parallel Track, CACQ, STAIRs)
//! must produce exactly the oracle's output lineages, regardless of how
//! many plan transitions happen along the way.

use std::collections::VecDeque;

use jisc_common::{FxHashMap, FxHashSet, Key, Lineage, SeqNo, StreamId};

/// Brute-force evaluator over `n` streams.
#[derive(Debug)]
pub struct NaiveOracle {
    windows: Vec<VecDeque<(SeqNo, Key)>>,
    window_size: usize,
    next_seq: SeqNo,
    /// Multiset of produced result lineages.
    pub results: FxHashMap<Lineage, usize>,
    /// Outer tuples currently visible (set-difference mode only).
    visible: FxHashSet<SeqNo>,
    /// Query mode.
    mode: Mode,
}

/// What query the oracle evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Equi-join of every stream on the shared key.
    JoinAll,
    /// `s0 − s1 − s2 − …`: outputs emitted when a stream-0 tuple arrives
    /// and no other stream currently holds its key (append-only log, same
    /// emission rule as the engine), plus re-emissions when the last
    /// suppressor expires.
    SetDiffChain,
}

impl NaiveOracle {
    /// Oracle over `streams` streams with a shared `window_size`.
    pub fn new(streams: usize, window_size: usize, mode: Mode) -> Self {
        NaiveOracle {
            windows: vec![VecDeque::new(); streams],
            window_size,
            next_seq: 0,
            results: FxHashMap::default(),
            visible: FxHashSet::default(),
            mode,
        }
    }

    /// Process one arrival, recording any results it produces.
    pub fn push(&mut self, stream: StreamId, key: Key) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Slide the window first, exactly like the engine's ingest.
        let expired = {
            let ring = &mut self.windows[stream.0 as usize];
            if ring.len() == self.window_size {
                ring.pop_front()
            } else {
                None
            }
        };
        if self.mode == Mode::SetDiffChain {
            if let Some((sq, k)) = expired {
                if stream.0 == 0 {
                    self.visible.remove(&sq);
                } else {
                    self.maybe_reemit_after_expiry(k);
                }
            }
        }
        self.windows[stream.0 as usize].push_back((seq, key));
        match self.mode {
            Mode::JoinAll => self.join_all(stream, seq, key),
            Mode::SetDiffChain => self.set_diff(stream, seq, key),
        }
    }

    fn join_all(&mut self, stream: StreamId, seq: SeqNo, key: Key) {
        // Cross product of matching tuples from every *other* stream.
        let mut combos: Vec<Vec<(StreamId, SeqNo)>> = vec![vec![(stream, seq)]];
        for (i, ring) in self.windows.iter().enumerate() {
            if i == stream.0 as usize {
                continue;
            }
            let matches: Vec<(StreamId, SeqNo)> = ring
                .iter()
                .filter(|(_, k)| *k == key)
                .map(|(s, _)| (StreamId(i as u16), *s))
                .collect();
            if matches.is_empty() {
                return; // some stream has no partner: no output
            }
            let mut next = Vec::with_capacity(combos.len() * matches.len());
            for c in &combos {
                for m in &matches {
                    let mut c2 = c.clone();
                    c2.push(*m);
                    next.push(c2);
                }
            }
            combos = next;
        }
        for c in combos {
            *self.results.entry(Lineage::new(c)).or_default() += 1;
        }
    }

    fn suppressed(&self, key: Key) -> bool {
        self.windows[1..]
            .iter()
            .any(|r| r.iter().any(|(_, k)| *k == key))
    }

    fn set_diff(&mut self, stream: StreamId, seq: SeqNo, key: Key) {
        if stream.0 != 0 {
            // Subtrahend arrival: matching visible outers become suppressed.
            let victims: Vec<SeqNo> = self.windows[0]
                .iter()
                .filter(|(_, k)| *k == key)
                .map(|(s, _)| *s)
                .collect();
            for v in victims {
                self.visible.remove(&v);
            }
            return;
        }
        if !self.suppressed(key) {
            self.visible.insert(seq);
            *self
                .results
                .entry(Lineage::new(vec![(stream, seq)]))
                .or_default() += 1;
        }
    }

    fn maybe_reemit_after_expiry(&mut self, key: Key) {
        // The expired subtrahend tuple was already popped; if no suppressor
        // remains, every currently-suppressed outer with this key re-emerges.
        if self.suppressed(key) {
            return;
        }
        let reborn: Vec<SeqNo> = self.windows[0]
            .iter()
            .filter(|(sq, k)| *k == key && !self.visible.contains(sq))
            .map(|(sq, _)| *sq)
            .collect();
        for sq in reborn {
            self.visible.insert(sq);
            *self
                .results
                .entry(Lineage::new(vec![(StreamId(0), sq)]))
                .or_default() += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_join_counts() {
        let mut o = NaiveOracle::new(2, 10, Mode::JoinAll);
        o.push(StreamId(0), 5);
        o.push(StreamId(1), 5);
        o.push(StreamId(1), 5);
        o.push(StreamId(0), 5); // joins both stream-1 tuples
                                // r1⋈s1, r1⋈s2 (when each s arrived), r2⋈s1, r2⋈s2
        assert_eq!(o.results.values().sum::<usize>(), 4);
    }

    #[test]
    fn window_limits_matches() {
        let mut o = NaiveOracle::new(2, 1, Mode::JoinAll);
        o.push(StreamId(0), 5);
        o.push(StreamId(0), 6); // evicts key 5
        o.push(StreamId(1), 5);
        assert!(o.results.is_empty());
    }

    #[test]
    fn set_diff_visibility_and_reemission() {
        let mut o = NaiveOracle::new(2, 1, Mode::SetDiffChain);
        o.push(StreamId(1), 7); // suppressor
        o.push(StreamId(0), 7); // suppressed
        assert!(o.results.is_empty());
        o.push(StreamId(1), 99); // evicts suppressor: key 7 re-emerges
        assert_eq!(o.results.values().sum::<usize>(), 1);
    }
}
