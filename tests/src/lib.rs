//! Shared helpers for the cross-crate integration tests.
//!
//! The centerpiece is [`oracle::NaiveOracle`], a brute-force n-way windowed
//! join evaluator used as ground truth against every engine in the
//! workspace.

pub mod oracle;
