//! Every engine in the workspace must match the brute-force oracle —
//! windows, joins, set-differences, and migrations included.

use jisc_common::{FxHashMap, Lineage, SplitMix64, StreamId};
use jisc_core::{AdaptiveEngine, Strategy};
use jisc_eddy::{CacqExec, StairsExec, StairsMode};
use jisc_engine::{Catalog, JoinStyle, PlanSpec};
use jisc_integration_tests::oracle::{Mode, NaiveOracle};

fn workload(n: usize, streams: u16, keys: u64, seed: u64) -> Vec<(u16, u64)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.next_below(streams as u64) as u16, rng.next_below(keys)))
        .collect()
}

fn oracle_results(
    arrivals: &[(u16, u64)],
    streams: usize,
    window: usize,
    mode: Mode,
) -> FxHashMap<Lineage, usize> {
    let mut o = NaiveOracle::new(streams, window, mode);
    for &(s, k) in arrivals {
        o.push(StreamId(s), k);
    }
    o.results
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("s{i}")).collect()
}

#[test]
fn pipelined_engines_match_oracle_with_migrations() {
    for (streams, window, keys, n, seed) in [
        (3usize, 20usize, 6u64, 400usize, 1u64),
        (4, 35, 10, 700, 2),
        (5, 15, 5, 500, 3),
    ] {
        let arrivals = workload(n, streams as u16, keys, seed);
        let expected = oracle_results(&arrivals, streams, window, Mode::JoinAll);
        let nm = names(streams);
        let refs: Vec<&str> = nm.iter().map(String::as_str).collect();
        let mut rev = refs.clone();
        rev.reverse();
        let initial = PlanSpec::left_deep(&refs, JoinStyle::Hash);
        let target = PlanSpec::left_deep(&rev, JoinStyle::Hash);
        for strategy in [
            Strategy::Jisc,
            Strategy::MovingState,
            Strategy::ParallelTrack { check_period: 9 },
        ] {
            let catalog = Catalog::uniform(&refs, window).unwrap();
            let mut e = AdaptiveEngine::new(catalog, &initial, strategy).unwrap();
            for (i, &(s, k)) in arrivals.iter().enumerate() {
                if i == n / 2 {
                    e.transition_to(&target).unwrap();
                }
                e.push(StreamId(s), k, 0).unwrap();
            }
            assert_eq!(
                e.output().lineage_multiset(),
                expected,
                "{strategy:?} diverged from the oracle (streams={streams})"
            );
        }
    }
}

#[test]
fn cacq_matches_oracle() {
    for (streams, window, keys, n, seed) in
        [(3usize, 25usize, 8u64, 500usize, 4u64), (4, 18, 6, 600, 5)]
    {
        let arrivals = workload(n, streams as u16, keys, seed);
        let expected = oracle_results(&arrivals, streams, window, Mode::JoinAll);
        let nm = names(streams);
        let refs: Vec<&str> = nm.iter().map(String::as_str).collect();
        let catalog = Catalog::uniform(&refs, window).unwrap();
        let mut e = CacqExec::new(catalog).unwrap();
        for (i, &(s, k)) in arrivals.iter().enumerate() {
            if i == n / 2 {
                // mid-run rerouting must not change output
                let mut rev = refs.clone();
                rev.reverse();
                e.set_routing_order_named(&rev).unwrap();
            }
            e.push(StreamId(s), k, 0).unwrap();
        }
        assert_eq!(
            e.output.lineage_multiset(),
            expected,
            "CACQ diverged from the oracle"
        );
    }
}

#[test]
fn stairs_match_oracle_across_reroutes() {
    let streams = 4usize;
    let (window, keys, n) = (22usize, 7u64, 600usize);
    let arrivals = workload(n, streams as u16, keys, 6);
    let expected = oracle_results(&arrivals, streams, window, Mode::JoinAll);
    let nm = names(streams);
    let refs: Vec<&str> = nm.iter().map(String::as_str).collect();
    for mode in [StairsMode::Eager, StairsMode::JiscLazy] {
        let catalog = Catalog::uniform(&refs, window).unwrap();
        let mut e = StairsExec::new(catalog, &refs, mode).unwrap();
        for (i, &(s, k)) in arrivals.iter().enumerate() {
            if i == n / 3 || i == 2 * n / 3 {
                let mut rev = refs.clone();
                rev.rotate_left(1 + i % 2);
                e.reroute(&rev).unwrap();
            }
            e.push(StreamId(s), k, 0).unwrap();
        }
        assert_eq!(
            e.output().lineage_multiset(),
            expected,
            "STAIRs {mode:?} diverged from the oracle"
        );
    }
}

#[test]
fn set_difference_matches_oracle_with_migration() {
    let streams = 4usize;
    let (window, keys, n) = (25usize, 12u64, 800usize);
    let arrivals = workload(n, streams as u16, keys, 7);
    let expected = oracle_results(&arrivals, streams, window, Mode::SetDiffChain);
    let nm = names(streams);
    let refs: Vec<&str> = nm.iter().map(String::as_str).collect();
    let initial = PlanSpec::set_diff_chain(&refs);
    // migrate subtrahend order: s0 − s3 − s1 − s2
    let target = PlanSpec::set_diff_chain(&[refs[0], refs[3], refs[1], refs[2]]);
    for strategy in [Strategy::Jisc, Strategy::MovingState] {
        let catalog = Catalog::uniform(&refs, window).unwrap();
        let mut e = AdaptiveEngine::new(catalog, &initial, strategy).unwrap();
        for (i, &(s, k)) in arrivals.iter().enumerate() {
            if i == n / 2 {
                e.transition_to(&target).unwrap();
            }
            e.push(StreamId(s), k, 0).unwrap();
        }
        assert_eq!(
            e.output().lineage_multiset(),
            expected,
            "{strategy:?} set-difference diverged from the oracle"
        );
    }
}

#[test]
fn bushy_plans_match_oracle() {
    let streams = 6usize;
    let (window, keys, n) = (12usize, 5u64, 900usize);
    let arrivals = workload(n, streams as u16, keys, 8);
    let expected = oracle_results(&arrivals, streams, window, Mode::JoinAll);
    let nm = names(streams);
    let refs: Vec<&str> = nm.iter().map(String::as_str).collect();
    let initial = PlanSpec::bushy(&refs, JoinStyle::Hash);
    let shuffled = ["s4", "s1", "s5", "s3", "s0", "s2"];
    let target = PlanSpec::bushy(&shuffled, JoinStyle::Hash);
    let catalog = Catalog::uniform(&refs, window).unwrap();
    let mut e = AdaptiveEngine::new(catalog, &initial, Strategy::Jisc).unwrap();
    for (i, &(s, k)) in arrivals.iter().enumerate() {
        if i == n / 2 {
            e.transition_to(&target).unwrap();
        }
        e.push(StreamId(s), k, 0).unwrap();
    }
    assert_eq!(
        e.output().lineage_multiset(),
        expected,
        "bushy JISC diverged from the oracle"
    );
}

#[test]
fn mjoin_matches_oracle() {
    use jisc_eddy::MJoinExec;
    let streams = 4usize;
    let (window, keys, n) = (20usize, 7u64, 600usize);
    let arrivals = workload(n, streams as u16, keys, 10);
    let expected = oracle_results(&arrivals, streams, window, Mode::JoinAll);
    let nm = names(streams);
    let refs: Vec<&str> = nm.iter().map(String::as_str).collect();
    let catalog = Catalog::uniform(&refs, window).unwrap();
    let mut e = MJoinExec::new(catalog).unwrap();
    for (i, &(s, k)) in arrivals.iter().enumerate() {
        if i == n / 2 {
            let mut rev = refs.clone();
            rev.reverse();
            e.set_probe_order_named(&rev).unwrap();
        }
        e.push(StreamId(s), k, 0).unwrap();
    }
    assert_eq!(
        e.output.lineage_multiset(),
        expected,
        "MJoin diverged from the oracle"
    );
}
