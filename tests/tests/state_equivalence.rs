//! Slab-state equivalence properties: the cache-conscious slab layout must
//! be observationally identical to the old `FxHashMap<Key, Vec<Tuple>>`
//! layout (kept as [`jisc_engine::BaselineStore`]) at every level:
//!
//! 1. **Op level** — identical random insert/expire/drop sequences leave
//!    both stores with the same length, key set, and per-key match
//!    sequences (order included: both visit in per-key insertion order).
//!    Clones (the snapshot path) are compared too.
//! 2. **Ingest level** — the batch-probe kernel (`push_batch`) emits the
//!    same lineage multiset as tuple-at-a-time `push`, for arbitrary
//!    batch partitions of the same arrival sequence.
//! 3. **Strategy level** — Jisc, Moving State, Parallel Track, and a
//!    plain non-adaptive pipeline all agree on the lineage multiset under
//!    small windows (forcing expiry turnover), mid-stream migrations, and
//!    a checkpoint/restore round-trip of the adaptive engines.
//! 4. **Tier level** — the same properties with the memory budget forced
//!    tiny, so essentially every entry lives in the on-disk cold tier:
//!    the spilled slab is op-level ≡ the in-memory layouts, all four
//!    strategies stay lineage-identical under expiry + migration +
//!    checkpoint/restore, and the hash-chained durable manifest rejects
//!    any single flipped byte on recovery.

use jisc_common::{BaseTuple, Metrics, StreamId, Tuple, TupleBatch};
use jisc_core::AdaptiveEngine;
use jisc_engine::{
    BaselineStore, Catalog, DurableCheckpointStore, JoinStyle, Pipeline, PlanSpec, ScratchDir,
    SlabStore, SpillConfig,
};
use proptest::prelude::*;

type Strategy_ = jisc_core::Strategy;

fn base(seq: u64, key: u64) -> Tuple {
    Tuple::base(BaseTuple::new(StreamId(0), seq, key, 0))
}

/// One randomized store operation. Removal targets index into the log of
/// prior inserts, so they hit live entries, already-removed entries, and
/// absent keys alike.
#[derive(Debug, Clone)]
enum StoreOp {
    Insert { key: u64 },
    RemoveContaining { target: usize },
    RemoveKey { key: u64 },
}

/// Decode a raw `(selector, key, target)` triple: inserts weighted 4:2:1
/// over the two removal flavours.
fn decode_op(sel: u64, key: u64, target: u64) -> StoreOp {
    match sel {
        0..=3 => StoreOp::Insert { key },
        4..=5 => StoreOp::RemoveContaining {
            target: target as usize,
        },
        _ => StoreOp::RemoveKey { key },
    }
}

fn store_ops(max_ops: usize) -> impl Strategy<Value = Vec<StoreOp>> {
    proptest::collection::vec((0u64..7, 0u64..16, 0u64..1_000_000), 1..max_ops).prop_map(|raw| {
        raw.into_iter()
            .map(|(s, k, t)| decode_op(s, k, t))
            .collect()
    })
}

/// Full observable state of a store: (len, sorted keys, per-key match
/// lineages in visit order).
type Observed = (usize, Vec<u64>, Vec<Vec<jisc_common::Lineage>>);

fn observe(
    len: usize,
    keys: jisc_common::FxHashSet<u64>,
    mut matches: impl FnMut(u64) -> Vec<jisc_common::Lineage>,
) -> Observed {
    let mut sorted: Vec<u64> = keys.into_iter().collect();
    sorted.sort_unstable();
    let seqs = sorted.iter().map(|&k| matches(k)).collect();
    (len, sorted, seqs)
}

fn observe_slab(s: &SlabStore, m: &mut Metrics) -> Observed {
    observe(s.len(), s.distinct_keys(), |k| {
        let mut v = Vec::new();
        s.for_each_match(k, m, |t| v.push(t.lineage()));
        v
    })
}

/// [`observe_slab`] for a store with a cold tier: the probe discipline
/// requires faulting a key back before `for_each_match`, exactly as the
/// pipeline's batch prefault does.
fn observe_spilled_slab(s: &mut SlabStore, m: &mut Metrics) -> Observed {
    let keys = s.distinct_keys();
    let len = s.len();
    observe(len, keys, |k| {
        s.fault_in_key(k, m);
        let mut v = Vec::new();
        s.for_each_match(k, m, |t| v.push(t.lineage()));
        v
    })
}

fn observe_baseline(s: &BaselineStore, m: &mut Metrics) -> Observed {
    observe(s.len(), s.distinct_keys(), |k| {
        let mut v = Vec::new();
        s.for_each_match(k, m, |t| v.push(t.lineage()));
        v
    })
}

/// Arrivals with keys drawn from a small domain so joins actually fire.
fn arrivals(max_streams: usize, max_n: usize) -> impl Strategy<Value = (usize, Vec<(u16, u64)>)> {
    (3..=max_streams).prop_flat_map(move |streams| {
        (
            Just(streams),
            proptest::collection::vec((0..streams as u16, 0u64..6), 20..max_n),
        )
    })
}

fn catalog_and_spec(streams: usize, window: usize) -> (Catalog, PlanSpec, Vec<String>) {
    let names: Vec<String> = (0..streams).map(|i| format!("s{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let catalog = Catalog::uniform(&refs, window).unwrap();
    let spec = PlanSpec::left_deep(&refs, JoinStyle::Hash);
    (catalog, spec, names)
}

/// Run an adaptive engine over the arrivals with a reverse-order migration
/// at `transition_at` and — if the engine is quiescent there — a full
/// checkpoint/restore round-trip at `restore_at` (drop the live engine,
/// rebuild from the base-state snapshot, splice the output sink back).
/// With `spill_budget` the engine runs memory-budgeted: the budget is
/// re-attached after the restore (a fresh restore has no cold entries,
/// so re-tiering is legal), exercising spill across every lifecycle edge.
fn run_adaptive(
    strategy: Strategy_,
    streams: usize,
    window: usize,
    arr: &[(u16, u64)],
    restore_at: usize,
    transition_at: usize,
    spill_budget: Option<usize>,
) -> jisc_common::FxHashMap<jisc_common::Lineage, usize> {
    let (catalog, initial, names) = catalog_and_spec(streams, window);
    let mut rev: Vec<&str> = names.iter().map(String::as_str).collect();
    rev.reverse();
    let target = PlanSpec::left_deep(&rev, JoinStyle::Hash);
    let scratch = spill_budget.map(|_| ScratchDir::new("state-eq-adaptive"));
    let spill_cfg = |d: &ScratchDir| {
        SpillConfig::new(
            spill_budget.expect("scratch implies budget"),
            d.path().join("tier"),
        )
    };

    let mut e = AdaptiveEngine::new(catalog.clone(), &initial, strategy).unwrap();
    if let Some(d) = &scratch {
        e.enable_spill(spill_cfg(d)).unwrap();
    }
    for (i, &(s, k)) in arr.iter().enumerate() {
        if i == restore_at {
            if let Some(snap) = e.base_snapshot() {
                let sink = e.take_output();
                drop(e);
                e = AdaptiveEngine::restore(catalog.clone(), &initial, strategy, Some(&snap))
                    .unwrap();
                e.set_output(sink);
                if let Some(d) = &scratch {
                    e.enable_spill(spill_cfg(d)).unwrap();
                }
            }
        }
        if i == transition_at {
            e.transition_to(&target).unwrap();
        }
        e.push(StreamId(s), k, 0).unwrap();
    }
    assert!(
        e.output().is_duplicate_free(),
        "Theorem 3 violated by {strategy:?}"
    );
    e.output().lineage_multiset()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Op-level equivalence: the slab store and the old per-bucket layout
    /// stay observationally identical under arbitrary interleavings of
    /// inserts, window expiries (`remove_containing`), and key drops —
    /// and so do their deep clones (the snapshot/migration path).
    #[test]
    fn slab_matches_old_layout_under_random_ops(ops in store_ops(120)) {
        let mut m = Metrics::new();
        let mut slab = SlabStore::new();
        let mut old = BaselineStore::new();
        let mut log: Vec<(u64, u64)> = Vec::new(); // (seq, key) of every insert
        for (seq, op) in ops.iter().enumerate() {
            match *op {
                StoreOp::Insert { key } => {
                    slab.insert(base(seq as u64, key), &mut m);
                    old.insert(base(seq as u64, key), &mut m);
                    log.push((seq as u64, key));
                }
                StoreOp::RemoveContaining { target } => {
                    if log.is_empty() { continue; }
                    let (s, k) = log[target % log.len()];
                    let a = slab.remove_containing(StreamId(0), s, k, &mut m);
                    let b = old.remove_containing(StreamId(0), s, k, &mut m);
                    prop_assert_eq!(a, b, "remove_containing({}, {})", s, k);
                }
                StoreOp::RemoveKey { key } => {
                    let a = slab.remove_key(key, &mut m);
                    let b = old.remove_key(key, &mut m);
                    prop_assert_eq!(a, b, "remove_key({})", key);
                }
            }
            prop_assert_eq!(slab.len(), old.len());
        }
        prop_assert_eq!(slab.key_count(), old.key_count());
        prop_assert_eq!(observe_slab(&slab, &mut m), observe_baseline(&old, &mut m));
        // The snapshot path: a deep clone must observe identically.
        prop_assert_eq!(
            observe_slab(&slab.clone(), &mut m),
            observe_baseline(&old.clone(), &mut m)
        );
    }

    /// The batch-probe kernel is a pure performance change: partitioning
    /// the same arrival sequence into arbitrary batches and ingesting via
    /// `push_batch` yields exactly the serial `push` lineage multiset.
    #[test]
    fn batched_ingest_matches_serial(
        (streams, arr) in arrivals(4, 160),
        window in 4usize..24,
        cuts in proptest::collection::vec(1usize..16, 1..24),
    ) {
        let (catalog, spec, _) = catalog_and_spec(streams, window);
        let mut serial = Pipeline::new(catalog.clone(), &spec).unwrap();
        for &(s, k) in &arr {
            serial.push(StreamId(s), k, 0).unwrap();
        }

        let mut batched = Pipeline::new(catalog, &spec).unwrap();
        let mut i = 0;
        let mut cut = cuts.iter().cycle();
        while i < arr.len() {
            let end = (i + cut.next().unwrap()).min(arr.len());
            let mut batch = TupleBatch::new(end - i);
            for &(s, k) in &arr[i..end] {
                batch
                    .push(jisc_common::BatchedTuple::new(StreamId(s), k, 0))
                    .unwrap();
            }
            batched.push_batch(&batch).unwrap();
            i = end;
        }

        prop_assert!(batched.output.is_duplicate_free());
        prop_assert_eq!(
            batched.output.lineage_multiset(),
            serial.output.lineage_multiset()
        );
    }

    /// Strategy-level equivalence over the slab state: a plain pipeline
    /// and all three adaptive strategies — each with a mid-run migration
    /// and a checkpoint/restore round-trip — produce the same results
    /// while small windows keep the expiry ring churning.
    #[test]
    fn strategies_agree_with_expiry_migration_and_restore(
        (streams, arr) in arrivals(4, 120),
        window in 4usize..10,
        restore_pct in 10u64..45,
        transition_pct in 50u64..90,
    ) {
        let (catalog, spec, _) = catalog_and_spec(streams, window);
        let mut reference = Pipeline::new(catalog, &spec).unwrap();
        for &(s, k) in &arr {
            reference.push(StreamId(s), k, 0).unwrap();
        }
        let expect = reference.output.lineage_multiset();

        let restore_at = arr.len() * restore_pct as usize / 100;
        let transition_at = arr.len() * transition_pct as usize / 100;
        for strategy in [
            Strategy_::Jisc,
            Strategy_::MovingState,
            Strategy_::ParallelTrack { check_period: 5 },
        ] {
            let got = run_adaptive(strategy, streams, window, &arr, restore_at, transition_at, None);
            prop_assert_eq!(&got, &expect, "strategy {:?} diverged", strategy);
        }
    }

    /// Tier-level op equivalence: with the budget forced to one byte the
    /// hot tier can hold nothing, so essentially every entry round-trips
    /// through compressed on-disk segments — and the store must still be
    /// observationally identical to the in-memory baseline under random
    /// inserts, expiries, and key drops, fault-backs included.
    #[test]
    fn spilled_slab_matches_old_layout_under_random_ops(ops in store_ops(100)) {
        let scratch = ScratchDir::new("state-eq-slab");
        let mut m = Metrics::new();
        let mut slab = SlabStore::new();
        slab.enable_spill(SpillConfig::new(1, scratch.path().join("tier"))).unwrap();
        let mut old = BaselineStore::new();
        let mut log: Vec<(u64, u64)> = Vec::new();
        for (seq, op) in ops.iter().enumerate() {
            match *op {
                StoreOp::Insert { key } => {
                    slab.insert(base(seq as u64, key), &mut m);
                    old.insert(base(seq as u64, key), &mut m);
                    log.push((seq as u64, key));
                }
                StoreOp::RemoveContaining { target } => {
                    if log.is_empty() { continue; }
                    let (s, k) = log[target % log.len()];
                    let a = slab.remove_containing(StreamId(0), s, k, &mut m);
                    let b = old.remove_containing(StreamId(0), s, k, &mut m);
                    prop_assert_eq!(a, b, "spilled remove_containing({}, {})", s, k);
                }
                StoreOp::RemoveKey { key } => {
                    let a = slab.remove_key(key, &mut m);
                    let b = old.remove_key(key, &mut m);
                    prop_assert_eq!(a, b, "spilled remove_key({})", key);
                }
            }
            prop_assert_eq!(slab.len(), old.len());
        }
        if !log.is_empty() {
            prop_assert!(m.spill_evictions > 0, "a 1-byte budget must evict");
        }
        prop_assert_eq!(slab.key_count(), old.key_count());
        // The snapshot path first: a deep clone (shared segment files)
        // must observe identically, before fault-backs mutate the source.
        prop_assert_eq!(
            observe_spilled_slab(&mut slab.clone(), &mut m),
            observe_baseline(&old.clone(), &mut m)
        );
        prop_assert_eq!(
            observe_spilled_slab(&mut slab, &mut m),
            observe_baseline(&old, &mut m)
        );
    }
}

proptest! {
    // The spilled strategy sweep runs four engines per case with every
    // entry thrashing through disk; fewer cases keep the suite honest
    // without dominating it.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tier-level strategy equivalence: a tiny budget (everything cold)
    /// must leave all four strategies — plain pipelined plus the three
    /// adaptive ones, each with a mid-run migration and a
    /// checkpoint/restore round-trip — lineage-identical to the
    /// unbounded in-memory reference while expiry churns the ring.
    #[test]
    fn spilled_strategies_agree_with_expiry_migration_and_restore(
        (streams, arr) in arrivals(4, 90),
        window in 4usize..10,
        restore_pct in 10u64..45,
        transition_pct in 50u64..90,
    ) {
        let (catalog, spec, _) = catalog_and_spec(streams, window);
        let mut reference = Pipeline::new(catalog.clone(), &spec).unwrap();
        for &(s, k) in &arr {
            reference.push(StreamId(s), k, 0).unwrap();
        }
        let expect = reference.output.lineage_multiset();

        // Plain pipelined under the budget.
        let scratch = ScratchDir::new("state-eq-plain");
        let mut plain = Pipeline::new(catalog, &spec).unwrap();
        plain.enable_spill(SpillConfig::new(64, scratch.path().join("tier"))).unwrap();
        for &(s, k) in &arr {
            plain.push(StreamId(s), k, 0).unwrap();
        }
        prop_assert!(plain.output.is_duplicate_free());
        prop_assert_eq!(plain.output.lineage_multiset(), expect.clone());
        prop_assert!(
            plain.metrics.spill_evictions > 0,
            "the tiny budget must force the cold tier into play"
        );

        let restore_at = arr.len() * restore_pct as usize / 100;
        let transition_at = arr.len() * transition_pct as usize / 100;
        for strategy in [
            Strategy_::Jisc,
            Strategy_::MovingState,
            Strategy_::ParallelTrack { check_period: 5 },
        ] {
            let got = run_adaptive(
                strategy, streams, window, &arr, restore_at, transition_at, Some(64),
            );
            prop_assert_eq!(&got, &expect, "spilled strategy {:?} diverged", strategy);
        }
    }

    /// The hash-chained durable manifest must reject *any* single flipped
    /// byte — in the checkpoint payload (caught by the per-file FNV) or
    /// in the manifest itself (caught by the chain) — as a recovery
    /// error, never a silent fresh start or a wrong restore.
    #[test]
    fn durable_manifest_rejects_any_flipped_byte(
        n in 40usize..120,
        target_sel in 0u64..2,
        pos_seed in 0u64..1_000_000,
    ) {
        let corrupt_manifest = target_sel == 0;
        let scratch = ScratchDir::new("state-eq-durable");
        let (catalog, spec, _) = catalog_and_spec(3, 12);
        let mut p = Pipeline::new(catalog, &spec).unwrap();
        for i in 0..n {
            p.push(StreamId((i % 3) as u16), (i as u64 * 7 + 3) % 5, 0).unwrap();
        }
        let snap = p.snapshot_base_state().expect("hash plans snapshot");
        let mut store = DurableCheckpointStore::open(scratch.path()).unwrap();
        store.persist(&snap, n as u64).unwrap();
        drop(store);

        // Pick the victim file and flip one byte somewhere inside it.
        let manifest = DurableCheckpointStore::manifest_path(scratch.path());
        let victim = if corrupt_manifest {
            manifest
        } else {
            std::fs::read_dir(scratch.path())
                .unwrap()
                .flatten()
                .map(|e| e.path())
                .find(|q| q.extension().is_some_and(|x| x == "jspl"))
                .expect("persist wrote a checkpoint segment")
        };
        let mut bytes = std::fs::read(&victim).unwrap();
        prop_assume!(!bytes.is_empty());
        let at = (pos_seed % bytes.len() as u64) as usize;
        bytes[at] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();

        prop_assert!(
            DurableCheckpointStore::recover_latest(scratch.path()).is_err(),
            "flipped byte at {} of {:?} must fail recovery",
            at,
            victim.file_name()
        );
    }
}
