//! Property-based tests (proptest): randomized workloads, windows, plan
//! shapes, and transition schedules against the brute-force oracle and the
//! paper's invariants (Theorems 1–3, §4.3 counter convergence).

use jisc_common::StreamId;
use jisc_core::AdaptiveEngine;
use jisc_engine::{Catalog, JoinStyle, PlanSpec};
use jisc_integration_tests::oracle::{Mode, NaiveOracle};
use proptest::prelude::*;

/// A generated scenario: arrivals plus a transition schedule.
#[derive(Debug, Clone)]
struct Scenario {
    streams: usize,
    window: usize,
    arrivals: Vec<(u16, u64)>,
    /// (arrival index, permutation of stream indices)
    transitions: Vec<(usize, Vec<usize>)>,
}

fn scenario_strategy(max_streams: usize, max_n: usize) -> impl Strategy<Value = Scenario> {
    (3..=max_streams, 5usize..40, 20usize..max_n).prop_flat_map(|(streams, window, n)| {
        let arrivals = proptest::collection::vec((0..streams as u16, 0u64..12), n);
        let perm = proptest::sample::select(
            // a handful of fixed permutation shapes; Just to keep shrinking sane
            (0..streams)
                .map(|rot| {
                    let mut p: Vec<usize> = (0..streams).collect();
                    p.rotate_left(rot);
                    p
                })
                .chain([{
                    let mut p: Vec<usize> = (0..streams).collect();
                    p.reverse();
                    p
                }])
                .collect::<Vec<_>>(),
        );
        let transitions = proptest::collection::vec((0..n, perm), 0..4);
        (Just(streams), Just(window), arrivals, transitions).prop_map(
            |(streams, window, arrivals, mut transitions)| {
                transitions.sort_by_key(|(i, _)| *i);
                Scenario {
                    streams,
                    window,
                    arrivals,
                    transitions,
                }
            },
        )
    })
}

fn run_strategy(
    sc: &Scenario,
    strategy: Strategy_,
) -> jisc_common::FxHashMap<jisc_common::Lineage, usize> {
    let names: Vec<String> = (0..sc.streams).map(|i| format!("s{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let catalog = Catalog::uniform(&refs, sc.window).unwrap();
    let initial = PlanSpec::left_deep(&refs, JoinStyle::Hash);
    let mut e = AdaptiveEngine::new(catalog, &initial, strategy).unwrap();
    let mut next = 0;
    for (i, &(s, k)) in sc.arrivals.iter().enumerate() {
        while next < sc.transitions.len() && sc.transitions[next].0 == i {
            let perm: Vec<&str> = sc.transitions[next].1.iter().map(|&j| refs[j]).collect();
            let plan = PlanSpec::left_deep(&perm, JoinStyle::Hash);
            e.transition_to(&plan).unwrap();
            next += 1;
        }
        e.push(StreamId(s), k, 0).unwrap();
    }
    assert!(
        e.output().is_duplicate_free(),
        "Theorem 3 violated by {strategy:?}"
    );
    e.output().lineage_multiset()
}

type Strategy_ = jisc_core::Strategy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorems 1 & 2: under arbitrary transition schedules, JISC produces
    /// exactly the oracle's output — nothing missed, nothing invented.
    #[test]
    fn jisc_matches_oracle(sc in scenario_strategy(5, 250)) {
        let mut o = NaiveOracle::new(sc.streams, sc.window, Mode::JoinAll);
        for &(s, k) in &sc.arrivals {
            o.push(StreamId(s), k);
        }
        let got = run_strategy(&sc, Strategy_::Jisc);
        prop_assert_eq!(got, o.results);
    }

    /// The same under Moving State and Parallel Track.
    #[test]
    fn baselines_match_oracle(sc in scenario_strategy(4, 160)) {
        let mut o = NaiveOracle::new(sc.streams, sc.window, Mode::JoinAll);
        for &(s, k) in &sc.arrivals {
            o.push(StreamId(s), k);
        }
        let ms = run_strategy(&sc, Strategy_::MovingState);
        prop_assert_eq!(&ms, &o.results);
        let pt = run_strategy(&sc, Strategy_::ParallelTrack { check_period: 5 });
        prop_assert_eq!(&pt, &o.results);
    }

    /// §4.3 liveness: once the windows fully turn over after the last
    /// transition, every pending key has either been completed or expired,
    /// so every state is complete again.
    #[test]
    fn counters_converge_after_window_turnover(
        seed in 0u64..500,
        streams in 3usize..6,
        window in 4usize..16,
    ) {
        let names: Vec<String> = (0..streams).map(|i| format!("s{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let catalog = Catalog::uniform(&refs, window).unwrap();
        let initial = PlanSpec::left_deep(&refs, JoinStyle::Hash);
        let mut rev = refs.clone();
        rev.reverse();
        let target = PlanSpec::left_deep(&rev, JoinStyle::Hash);
        let mut e = AdaptiveEngine::new(catalog, &initial, Strategy_::Jisc).unwrap();
        let mut rng = jisc_common::SplitMix64::new(seed);
        let warm = streams * window * 2;
        for _ in 0..warm {
            e.push(
                StreamId(rng.next_below(streams as u64) as u16),
                rng.next_below(8),
                0,
            ).unwrap();
        }
        e.transition_to(&target).unwrap();
        // Drive until every stream's window content postdates the
        // transition: every pre-transition key is gone, so every pending
        // key was either completed on demand or expired.
        for _ in 0..streams * window * 4 {
            e.push(
                StreamId(rng.next_below(streams as u64) as u16),
                rng.next_below(8),
                0,
            ).unwrap();
        }
        prop_assert_eq!(e.incomplete_states(), 0, "states must converge to complete");
    }

    /// Plan-spec algebra: swapping two streams is an involution and
    /// preserves the leaf multiset.
    #[test]
    fn swap_is_involution(streams in 2usize..8, a in 0usize..8, b in 0usize..8) {
        let names: Vec<String> = (0..streams).map(|i| format!("s{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let plan = PlanSpec::left_deep(&refs, JoinStyle::Hash);
        let (a, b) = (a % streams, b % streams);
        let swapped = plan.swap_streams(refs[a], refs[b]);
        prop_assert_eq!(swapped.swap_streams(refs[a], refs[b]), plan.clone());
        let mut l1 = plan.leaves();
        let mut l2 = swapped.leaves();
        l1.sort();
        l2.sort();
        prop_assert_eq!(l1, l2);
    }
}
