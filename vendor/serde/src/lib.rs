//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of config
//! and metrics types but never serializes through serde itself (the one
//! JSON emitter is hand-rolled; see `jisc_common::metrics`). The build
//! environment has no registry access, so this crate supplies just enough
//! surface for those derives to compile: two marker traits and a derive
//! macro that emits empty impls. If a future change needs real
//! serialization, vendor the full crate or hand-roll the writer as
//! `metrics.rs` does.

/// Marker for types declared serializable. No methods: nothing in this
/// workspace drives serialization through serde.
pub trait Serialize {}

/// Marker for types declared deserializable.
pub trait Deserialize<'de>: Sized {}

/// Blanket impls so containers of serializable types stay serializable if
/// a derive is ever placed on a wrapper struct.
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool, char, String, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64
);

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
