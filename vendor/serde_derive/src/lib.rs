//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the macro
//! walks the raw token stream, takes the identifier that follows the
//! `struct`/`enum`/`union` keyword, and emits an empty marker impl. The
//! workspace's derive sites are all non-generic, which keeps this honest;
//! generic types get a compile error pointing here instead of a silently
//! wrong impl.

use proc_macro::{TokenStream, TokenTree};

/// Extract `(name, has_generics)` for the item being derived.
fn item_name(input: TokenStream) -> (String, bool) {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ref id) = tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("derive: expected type name after `{kw}`, got {other:?}"),
                };
                let generic = matches!(
                    tokens.next(),
                    Some(TokenTree::Punct(ref p)) if p.as_char() == '<'
                );
                return (name, generic);
            }
        }
    }
    panic!("derive: no struct/enum/union found in input");
}

fn marker_impl(input: TokenStream, template: &str) -> TokenStream {
    let (name, generic) = item_name(input);
    assert!(
        !generic,
        "offline serde derive does not support generic type `{name}`; \
         write the impl by hand (see vendor/serde_derive)"
    );
    template
        .replace("$name", &name)
        .parse()
        .expect("derive: generated impl must parse")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(
        input,
        "#[automatically_derived] impl ::serde::Serialize for $name {}",
    )
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(
        input,
        "#[automatically_derived] impl<'de> ::serde::Deserialize<'de> for $name {}",
    )
}
