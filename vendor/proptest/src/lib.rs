//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest's API that the workspace's property tests use:
//! integer-range / bool / `Just` / tuple / `collection::vec` /
//! `sample::select` strategies, `prop_map` / `prop_flat_map`, the
//! `proptest!` macro with `proptest_config`, and the `prop_assert*` /
//! `prop_assume` macros. Inputs are generated from a deterministic
//! per-test seed (override with `PROPTEST_SEED`); failures report the
//! case number and seed so a run can be reproduced exactly.
//!
//! Deliberately absent: shrinking, regression persistence, and the full
//! strategy combinator zoo. Failing cases print their seed instead of a
//! minimized value.

pub mod test_runner {
    /// Error type carried out of a `proptest!` body by the `prop_assert*`
    /// and `prop_assume!` macros.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failed: the property does not hold.
        Fail(String),
        /// Input rejected by `prop_assume!`: skip this case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG (SplitMix64) seeding each property's inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
        seed: u64,
    }

    impl TestRng {
        /// Seed from the property name, or `PROPTEST_SEED` if set (applied
        /// to every property in the run — use with a single test filter).
        pub fn for_property(name: &str) -> Self {
            let seed = match std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
            {
                Some(s) => s,
                // FNV-1a over the name: stable across runs and platforms.
                None => name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                }),
            };
            TestRng { state: seed, seed }
        }

        /// The seed this RNG started from (for failure reports).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "next_below(0)");
            // Rejection sampling to stay exactly uniform.
            let zone = u64::MAX - u64::MAX % bound;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no `ValueTree`/shrinking layer: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategies compose by reference (tuples of `&strat` etc.).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.next_below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The full-range strategy for `A`: `any::<u64>()`, `any::<bool>()`, …
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec()`](vec()): a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`](vec()).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let n = self.size.min + rng.next_below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.next_below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniformly pick one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        // The caller supplies `#[test]` among its attributes (as real
        // proptest expects), so none is added here.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_property(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {}/{} (seed {}): {}",
                            stringify!($name), case + 1, config.cases, rng.seed(), msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right,
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: {:?}",
            format!($($fmt)+), left,
        );
    }};
}

/// Skip the current case when its input does not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_property("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-4i32..=4), &mut rng);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_property("x");
        let mut b = TestRng::for_property("x");
        let s = crate::collection::vec(0u64..100, 1..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in crate::collection::vec((0u16..8, 0u64..100), 1..6), flag in any::<bool>()) {
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.len(), v.iter().map(|_| 1usize).sum::<usize>());
            let _ = flag;
        }

        #[test]
        fn flat_map_and_select(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::sample::select((0..n).collect::<Vec<_>>()))
        }).prop_map(|(n, pick)| (n, pick))) {
            prop_assert!(pair.1 < pair.0);
        }
    }
}
