//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! re-implements the API surface the `crates/bench/benches/*` files use:
//! `criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotation, and the `iter`/`iter_batched` timing loops. Measurement is
//! a mean over a fixed number of timed iterations (after a warm-up pass)
//! — good enough to rank alternatives, with none of criterion's outlier
//! statistics or HTML reports.
//!
//! Behavior under the cargo harnesses matches real criterion: executables
//! run benchmarks when invoked with `--bench` (as `cargo bench` does) and
//! exit immediately in test mode (`cargo test` runs `harness = false`
//! bench targets without `--bench`), so the benches never slow the test
//! suite down.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stub times each routine
/// invocation individually, so the variants only pick the batch count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for a group's throughput line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.name.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.name, self.parameter)
        }
    }
}

/// Runs closures and records a mean wall-clock time per iteration.
pub struct Bencher {
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    fn run_samples(&mut self, mut one: impl FnMut() -> Duration) {
        // One warm-up iteration, then the timed samples.
        let _ = one();
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            total += one();
        }
        self.mean = total / self.sample_size as u32;
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.run_samples(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run_samples(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    /// `iter_batched` variant handing the routine `&mut I`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        self.run_samples(|| {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            start.elapsed()
        });
    }
}

/// A named set of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn report(&self, label: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{label:<28} {mean:>12.2?}/iter{rate}", self.name);
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        if !self.criterion.bench_mode {
            return;
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        self.report(label, b.mean);
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = id.into();
        self.run(&label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.label(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver. `bench_mode` mirrors real criterion's
/// handling of cargo's harness flags: `--bench` runs, `--test` (or no
/// flag) skips.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Real criterion parses CLI filters here; the stub only records mode.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if self.bench_mode {
            println!("\n== {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut g = self.benchmark_group(id);
        g.run(id, f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            let _ = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_label_correctly() {
        assert_eq!(BenchmarkId::new("jisc", 20).label(), "jisc/20");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
    }

    #[test]
    fn skips_outside_bench_mode() {
        // Unit tests run without `--bench`, so nothing should execute.
        let mut c = Criterion::default();
        assert!(!c.bench_mode);
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |_| ran = true);
        g.finish();
        assert!(!ran);
    }
}
