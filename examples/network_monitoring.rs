//! Network monitoring: correlate security events across four feeds.
//!
//! ```text
//! cargo run -p jisc-examples --release --bin network_monitoring
//! ```
//!
//! A SOC-style continuous query joins four event streams on connection id:
//!
//! ```text
//! firewall ⋈ ids ⋈ netflow ⋈ auth       (windows: last 2000 events each)
//! ```
//!
//! A tiny runtime optimizer watches per-join selectivities; when observed
//! reality diverges from the running join order it requests a transition.
//! With JISC the alert stream never stalls across migrations — the property
//! the paper targets for safety-critical monitoring (§1).
//!
//! Ingest is columnar: events accumulate in a [`ColumnarBatch`] and ship
//! through the vectorized kernel path (DESIGN.md §9). Alerts are credited
//! to the feed whose arrival completed them via output lineage, so the
//! selectivity monitor works on batch boundaries.

use jisc_common::{ColumnarBatch, SplitMix64, StreamId};
use jisc_core::{AdaptiveEngine, Strategy};
use jisc_engine::{Catalog, JoinStyle, PlanSpec};

const STREAMS: [&str; 4] = ["firewall", "ids", "netflow", "auth"];
const WINDOW: usize = 2_000;

/// Events per columnar batch.
const BATCH: usize = 64;

/// One raw event; the engine only sees (stream, connection id, row id).
#[derive(Debug)]
struct Event {
    feed: &'static str,
    conn_id: u64,
    detail: String,
}

/// Observes per-stream match rates and proposes a join order: most
/// selective (fewest matches per probe) innermost — the textbook heuristic
/// the paper assumes the optimizer applies (§5.2).
struct SelectivityMonitor {
    // (probes, hits) per stream
    stats: Vec<(u64, u64)>,
}

impl SelectivityMonitor {
    fn new() -> Self {
        SelectivityMonitor {
            stats: vec![(0, 0); STREAMS.len()],
        }
    }

    /// Record `probes` arrivals and `hits` completed alerts for a stream.
    fn observe(&mut self, stream: usize, probes: u64, hits: u64) {
        let s = &mut self.stats[stream];
        s.0 += probes;
        s.1 += hits;
    }

    /// Streams ordered by ascending hit rate (most selective first).
    fn proposed_order(&self) -> Vec<&'static str> {
        let mut idx: Vec<usize> = (0..STREAMS.len()).collect();
        idx.sort_by(|&a, &b| {
            let ra = self.stats[a].1 as f64 / self.stats[a].0.max(1) as f64;
            let rb = self.stats[b].1 as f64 / self.stats[b].0.max(1) as f64;
            ra.partial_cmp(&rb).expect("rates are finite")
        });
        idx.into_iter().map(|i| STREAMS[i]).collect()
    }
}

/// Phase-dependent workload: early on, `auth` events are rare (selective);
/// later the attack shifts and `ids` becomes the selective feed.
fn synth_event(rng: &mut SplitMix64, phase: usize, seq: usize) -> Event {
    let feed_idx = if phase == 0 {
        // auth quiet: mostly firewall/netflow noise
        match rng.next_below(10) {
            0 => 3,     // auth (rare)
            1 | 2 => 1, // ids
            3..=6 => 0, // firewall
            _ => 2,     // netflow
        }
    } else {
        // attack phase: ids quiet, auth chattering
        match rng.next_below(10) {
            0 => 1,     // ids (rare)
            1 | 2 => 3, // auth
            3..=6 => 0, // firewall
            _ => 2,     // netflow
        }
    } as usize;
    let conn_id = rng.next_below(3_000);
    Event {
        feed: STREAMS[feed_idx],
        conn_id,
        detail: format!("{}-event#{seq} conn={conn_id}", STREAMS[feed_idx]),
    }
}

fn main() {
    let catalog = Catalog::uniform(&STREAMS, WINDOW).expect("catalog");
    // Start with a guess: auth innermost (assumed most selective).
    let initial_order = ["auth", "firewall", "netflow", "ids"];
    let plan = PlanSpec::left_deep(&initial_order, JoinStyle::Hash);
    let mut engine = AdaptiveEngine::new(catalog, &plan, Strategy::Jisc).expect("engine");

    let mut rng = SplitMix64::new(2024);
    let mut monitor = SelectivityMonitor::new();
    let mut archive: Vec<Event> = Vec::new();
    let mut transitions = 0usize;
    let mut current_order: Vec<&'static str> = initial_order.to_vec();

    let total = 40_000usize;
    let mut batch = ColumnarBatch::new(BATCH);
    let mut batch_feeds: Vec<usize> = Vec::with_capacity(BATCH);
    for i in 0..total {
        let phase = if i < total / 2 { 0 } else { 1 };
        let ev = synth_event(&mut rng, phase, i);
        let feed_idx = STREAMS
            .iter()
            .position(|s| *s == ev.feed)
            .expect("known feed");
        batch
            .push(StreamId(feed_idx as u16), ev.conn_id, archive.len() as u64)
            .expect("batch row");
        batch_feeds.push(feed_idx);
        archive.push(ev);

        // Ship the batch through the columnar kernel path at capacity, at
        // optimizer checkpoints (so the monitor is current), and at
        // end-of-stream.
        let checkpoint = i > 0 && i % 5_000 == 0;
        if batch.is_full() || checkpoint || i + 1 == total {
            let out_before = engine.output().count();
            engine.push_columnar(&batch).expect("push batch");
            // Probes: one per arrival. Hits: credit each new alert to the
            // feed whose arrival completed it (latest constituent by seq).
            for &f in &batch_feeds {
                monitor.observe(f, 1, 0);
            }
            for alert in &engine.output().log[out_before..] {
                let mut last: Option<(u64, usize)> = None;
                alert.for_each_base(&mut |b| {
                    if last.is_none_or(|(s, _)| b.seq > s) {
                        last = Some((b.seq, b.stream.0 as usize));
                    }
                });
                if let Some((_, f)) = last {
                    monitor.observe(f, 0, 1);
                }
            }
            batch.clear();
            batch_feeds.clear();
        }

        // Every 5000 events, let the optimizer reconsider the join order.
        if checkpoint {
            let proposal = monitor.proposed_order();
            if proposal != current_order {
                let new_plan = PlanSpec::left_deep(&proposal, JoinStyle::Hash);
                engine.transition_to(&new_plan).expect("transition");
                transitions += 1;
                println!(
                    "[{i:>6}] optimizer reordered joins to {proposal:?} \
                     ({} incomplete state(s), output continues)",
                    engine.incomplete_states()
                );
                current_order = proposal;
            }
        }
    }

    let m = engine.metrics();
    println!("\n--- run summary ---");
    println!("events processed : {}", m.tuples_in);
    println!("alerts emitted   : {}", m.tuples_out);
    println!("plan transitions : {transitions}");
    println!("state completions: {}", m.completions);
    println!("duplicate-free   : {}", engine.output().is_duplicate_free());
    if let Some(alert) = engine.output().log.last() {
        println!("\nlast correlated alert:");
        let mut parts = Vec::new();
        alert.for_each_base(&mut |b| parts.push(b.payload as usize));
        for row in parts {
            println!("  {}", archive[row].detail);
        }
    }
    assert!(engine.output().is_duplicate_free());
}
