//! Quickstart: a three-way stream join that migrates its plan at runtime.
//!
//! ```text
//! cargo run -p jisc-examples --bin quickstart
//! ```
//!
//! Builds `(R ⋈ S) ⋈ T` over sliding windows, streams some tuples through
//! it, then switches to `(R ⋈ T) ⋈ S` with JISC — no halt, no missed or
//! duplicated results — and keeps going.

use jisc_core::{AdaptiveEngine, Strategy};
use jisc_engine::{Catalog, JoinStyle, PlanSpec};

fn main() {
    // Three streams, each with a 1000-tuple sliding window.
    let catalog = Catalog::uniform(&["R", "S", "T"], 1000).expect("catalog");

    // Initial plan: (R ⋈ S) ⋈ T, symmetric hash joins on the shared key.
    let plan = PlanSpec::left_deep(&["R", "S", "T"], JoinStyle::Hash);
    let mut engine = AdaptiveEngine::new(catalog, &plan, Strategy::Jisc).expect("engine");

    // Stream a few matching tuples. Payloads are opaque row ids — keep the
    // real rows wherever you like and look them up on output.
    engine.push_named("R", 7, 100).unwrap();
    engine.push_named("S", 7, 200).unwrap();
    engine.push_named("T", 7, 300).unwrap(); // completes the first result
    engine.push_named("T", 8, 301).unwrap(); // no R/S partners yet
    println!("results so far: {}", engine.output().count());

    // The optimizer decides T became more selective than S: migrate to
    // (R ⋈ T) ⋈ S. JISC adopts every state that survives the reorder and
    // completes the rest on demand — the query never stops.
    let better = PlanSpec::left_deep(&["R", "T", "S"], JoinStyle::Hash);
    engine.transition_to(&better).expect("transition");
    println!(
        "migrated; {} state(s) left incomplete, to be completed just in time:",
        engine.incomplete_states()
    );
    // EXPLAIN the running plan: which states survived, which are pending.
    print!(
        "{}",
        jisc_engine::explain(engine.as_jisc().expect("jisc strategy").pipeline())
    );

    // Keep streaming through the new plan.
    engine.push_named("S", 8, 201).unwrap(); // joins with T(8)? needs R(8) too
    engine.push_named("R", 8, 101).unwrap(); // completes the second result
    engine.push_named("R", 7, 102).unwrap(); // joins pre-migration S(7), T(7)

    println!("results after migration: {}", engine.output().count());
    for t in &engine.output().log {
        println!("  result {:?}", t.lineage());
    }
    let m = engine.metrics();
    println!(
        "metrics: {} tuples in, {} out, {} probes, {} completions, {} transition(s)",
        m.tuples_in, m.tuples_out, m.probes, m.completions, m.transitions
    );
    assert_eq!(engine.output().count(), 3);
    assert!(engine.output().is_duplicate_free());
}
