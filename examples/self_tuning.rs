//! Self-tuning pipeline: the optimizer crate drives migrations by itself.
//!
//! ```text
//! cargo run -p jisc-examples --release --bin self_tuning
//! ```
//!
//! A five-way join over clickstream feeds whose selectivities drift over
//! time. The [`jisc_optimizer::SelfTuningEngine`] watches its own hit
//! rates, and — with hysteresis so it never thrashes (§5.1.2) — migrates
//! the join order with JISC whenever observed reality disagrees with the
//! running plan.

use jisc_common::{SplitMix64, StreamId};
use jisc_core::Strategy;
use jisc_engine::Catalog;
use jisc_optimizer::{ReorderPolicy, SelfTuningEngine};

const FEEDS: [&str; 5] = ["clicks", "carts", "purchases", "refunds", "reviews"];

fn main() {
    let catalog = Catalog::uniform(&FEEDS, 1_000).expect("catalog");
    let mut engine = SelfTuningEngine::new(
        catalog,
        Strategy::Jisc,
        ReorderPolicy::new(4, 2_000), // meaningful reorders, ≥2000 events apart
        0.01,
    )
    .expect("engine");

    let mut rng = SplitMix64::new(77);
    let total = 80_000u64;
    for i in 0..total {
        // Selectivity drift: which feed is the "quiet" one changes by phase.
        let quiet = ((i / 20_000) % FEEDS.len() as u64) as u16;
        let stream = rng.next_below(FEEDS.len() as u64) as u16;
        let key = if stream == quiet && rng.next_below(10) < 9 {
            1_000_000 + rng.next_below(100_000) // rarely matches anything
        } else {
            rng.next_below(1_500)
        };
        engine.push(StreamId(stream), key, i).expect("push");
        if i % 20_000 == 19_999 {
            let order: Vec<&str> = engine
                .current_order()
                .iter()
                .map(|&s| FEEDS[s.0 as usize])
                .collect();
            println!(
                "[{i:>6}] order={order:?} migrations={} outputs={}",
                engine.migrations(),
                engine.engine().output().count()
            );
        }
    }

    let m = engine.engine().metrics();
    println!("\n--- self-tuning summary ---");
    println!("events          : {}", m.tuples_in);
    println!("outputs         : {}", m.tuples_out);
    println!("self-migrations : {}", engine.migrations());
    println!("completions     : {}", m.completions);
    println!(
        "duplicate-free  : {}",
        engine.engine().output().is_duplicate_free()
    );
    assert!(engine.engine().output().is_duplicate_free());
}
