//! Set-difference audit: orders that slipped past every exclusion list.
//!
//! ```text
//! cargo run -p jisc-examples --bin set_difference_audit
//! ```
//!
//! A compliance monitor watches four streams and continuously reports
//! orders with no matching cancellation, fraud flag, or embargo entry:
//!
//! ```text
//! ((orders − cancels) − fraud_flags) − embargo
//! ```
//!
//! Mid-run the optimizer reorders the subtrahends (the paper's §4.7
//! example, `A−B−C−D → A−D−B−C`) and JISC migrates the set-difference
//! states without stopping the report stream.

use jisc_common::SplitMix64;
use jisc_core::{AdaptiveEngine, Strategy};
use jisc_engine::{Catalog, PlanSpec};

const STREAMS: [&str; 4] = ["orders", "cancels", "fraud_flags", "embargo"];

fn main() {
    let catalog = Catalog::uniform(&STREAMS, 800).expect("catalog");
    let plan = PlanSpec::set_diff_chain(&["orders", "cancels", "fraud_flags", "embargo"]);
    let mut engine = AdaptiveEngine::new(catalog, &plan, Strategy::Jisc).expect("engine");

    let mut rng = SplitMix64::new(99);
    let mut pushed = 0u64;
    let mut push = |e: &mut AdaptiveEngine, stream: &str, order_id: u64| {
        e.push_named(stream, order_id, 0).expect("push");
        pushed += 1;
    };

    // Warm up: orders flow, a fraction get cancelled/flagged/embargoed.
    for i in 0..20_000u64 {
        let order_id = rng.next_below(5_000);
        match rng.next_below(10) {
            0 => push(&mut engine, "cancels", order_id),
            1 => push(&mut engine, "fraud_flags", order_id),
            2 => push(&mut engine, "embargo", order_id),
            _ => push(&mut engine, "orders", 20_000 + i), // unique: clean order
        }
    }
    let before = engine.output().count();
    println!("clean orders reported before migration: {before}");

    // Embargo feed turned out to be the most selective subtrahend: probe it
    // first. §4.7: states {orders−*} survive by outer signature; the rest
    // complete on demand.
    let better = PlanSpec::set_diff_chain(&["orders", "embargo", "cancels", "fraud_flags"]);
    engine.transition_to(&better).expect("transition");
    println!(
        "migrated subtrahend order; {} incomplete state(s) completing just in time",
        engine.incomplete_states()
    );

    for i in 0..20_000u64 {
        let order_id = rng.next_below(5_000);
        match rng.next_below(10) {
            0 => push(&mut engine, "cancels", order_id),
            1 => push(&mut engine, "fraud_flags", order_id),
            2 => push(&mut engine, "embargo", order_id),
            _ => push(&mut engine, "orders", 60_000 + i),
        }
    }

    let m = engine.metrics();
    println!("--- audit summary ---");
    println!("events processed : {}", m.tuples_in);
    println!("clean orders     : {}", engine.output().count());
    println!("suppressions     : {}", m.removals);
    println!("completions      : {}", m.completions);
    println!("duplicate-free   : {}", engine.output().is_duplicate_free());
    assert!(
        engine.output().count() > before,
        "output must keep flowing after migration"
    );
    assert!(engine.output().is_duplicate_free());
}
