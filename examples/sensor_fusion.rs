//! Sensor fusion under fluctuating rates: overlapped transitions, streamed
//! from a producer thread.
//!
//! ```text
//! cargo run -p jisc-examples --release --bin sensor_fusion
//! ```
//!
//! Six sensor arrays stream readings tagged with a cell id; the fused
//! output joins all six per cell. Rates fluctuate so quickly that the
//! optimizer fires transitions *before previous migrations settle* — the
//! §4.5 overlapped-transition regime where eager strategies thrash. A
//! bounded channel decouples the producer from the engine, as a real
//! deployment would.

use std::sync::mpsc;
use std::thread;

use jisc_common::SplitMix64;
use jisc_core::{AdaptiveEngine, Strategy};
use jisc_engine::{Catalog, JoinStyle, PlanSpec};

const SENSORS: [&str; 6] = [
    "lidar", "radar", "camera", "thermal", "acoustic", "pressure",
];
const WINDOW: usize = 1_500;
const EVENTS: usize = 60_000;

#[derive(Debug)]
enum Msg {
    Reading {
        sensor: &'static str,
        cell: u64,
    },
    /// Rate shift detected upstream: migrate to the given sensor order.
    Reorder(Vec<&'static str>),
    Done,
}

fn producer(tx: mpsc::SyncSender<Msg>) {
    let mut rng = SplitMix64::new(7);
    let mut order: Vec<&'static str> = SENSORS.to_vec();
    for i in 0..EVENTS {
        // Fluctuating rates: every 4000 events the "quiet" sensor changes,
        // and the upstream rate monitor immediately requests a reorder —
        // long before the previous migration's states finish completing.
        if i > 0 && i % 4_000 == 0 {
            let a = rng.next_below(SENSORS.len() as u64) as usize;
            let b = rng.next_below(SENSORS.len() as u64) as usize;
            if a != b {
                order.swap(a, b);
                tx.send(Msg::Reorder(order.clone())).expect("channel open");
            }
        }
        let sensor = order[rng.next_below(SENSORS.len() as u64) as usize];
        let cell = rng.next_below(2_000);
        tx.send(Msg::Reading { sensor, cell })
            .expect("channel open");
    }
    tx.send(Msg::Done).expect("channel open");
}

fn main() {
    let catalog = Catalog::uniform(&SENSORS, WINDOW).expect("catalog");
    let plan = PlanSpec::left_deep(&SENSORS, JoinStyle::Hash);
    let mut engine = AdaptiveEngine::new(catalog, &plan, Strategy::Jisc).expect("engine");

    let (tx, rx) = mpsc::sync_channel::<Msg>(1024);
    let producer = thread::spawn(move || producer(tx));

    let mut readings = 0u64;
    let mut transitions = 0u64;
    let mut max_incomplete = 0usize;
    let mut overlapped = 0u64;
    let t0 = std::time::Instant::now();
    for msg in rx.iter() {
        match msg {
            Msg::Reading { sensor, cell } => {
                engine.push_named(sensor, cell, readings).expect("push");
                readings += 1;
            }
            Msg::Reorder(order) => {
                // §4.5: if states from the previous transition are still
                // incomplete, this transition overlaps it.
                if engine.incomplete_states() > 0 {
                    overlapped += 1;
                }
                let new_plan = PlanSpec::left_deep(&order, JoinStyle::Hash);
                engine.transition_to(&new_plan).expect("transition");
                transitions += 1;
                max_incomplete = max_incomplete.max(engine.incomplete_states());
            }
            Msg::Done => break,
        }
    }
    producer.join().expect("producer thread");

    let m = engine.metrics();
    println!("--- sensor fusion summary ---");
    println!("readings            : {readings} in {:.1?}", t0.elapsed());
    println!("fused outputs       : {}", m.tuples_out);
    println!("transitions         : {transitions} ({overlapped} overlapped)");
    println!("max incomplete      : {max_incomplete}");
    println!("on-demand completions: {}", m.completions);
    println!("attempted skips     : {}", m.attempted_skips);
    println!(
        "duplicate-free      : {}",
        engine.output().is_duplicate_free()
    );
    assert!(engine.output().is_duplicate_free());
    assert!(transitions > 0, "expected the rate monitor to fire");
}
